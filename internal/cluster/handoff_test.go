package cluster

import (
	"errors"
	"testing"

	"parajoin/internal/fault"
)

// TestCrashMidHandoff kills a donor at the exact barrier the protocol is
// built around: after the recipient acknowledged a checksum-verified copy,
// before the donor reported "done" — so ownership has not moved when the
// donor dies. The coordinator must fall back to pushing from its
// authoritative store, declare the donor dead, and converge with every
// partition owned exactly once and bit-identical to the original.
func TestCrashMidHandoff(t *testing.T) {
	h := newHarness(t, 500, 8)

	// m1 joins alone and receives every slot; it is the only possible donor.
	plan := &fault.Plan{Rules: []fault.Rule{
		{Kind: fault.KindCrash, Exchange: -1, Worker: -1, Nth: 1},
	}}
	inj := plan.NewInjector()
	m1 := h.startMember("m1", "", MemberConfig{Injector: inj})
	h.waitFor("m1")
	h.checkPlacement(map[string]*testMember{"m1": m1})

	// m2's join moves ~half the slots off m1. The first donation m1 is asked
	// for crashes it mid-handoff; the coordinator direct-pushes that slot and
	// every later one, then declares m1 dead and rebalances onto m2 alone.
	m2 := h.startMember("m2", "", MemberConfig{})
	h.waitFor("m2")

	if inj.InjectedTotal() != 1 {
		t.Fatalf("injector fired %d times, want 1 (%s)", inj.InjectedTotal(), inj)
	}
	if !m1.m.Crashed() {
		t.Fatal("donor does not report the injected crash")
	}
	if err := <-m1.done; !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("donor run ended with %v, want an injected fault", err)
	}

	// No partition lost: the survivor holds every slot, checksum-verified and
	// bit-identical to the authoritative store.
	h.checkPlacement(map[string]*testMember{"m2": m2})
	want, err := h.store.LoadRelation("E")
	if err != nil {
		t.Fatal(err)
	}
	got, err := m2.store.LoadRelation("E")
	if err != nil {
		t.Fatal(err)
	}
	if !want.Equal(got) {
		t.Fatal("survivor's relation differs from the authoritative store")
	}

	// No partition duplicated: ownership is unique — every slot names m2 and
	// the slot list covers 0..slots-1 exactly once.
	st := h.coord.Status()
	seen := make(map[int]bool)
	for _, p := range st.Partitions {
		if p.Owner != "m2" {
			t.Fatalf("partition %s/%d owned by %q, want m2", p.Relation, p.Slot, p.Owner)
		}
		if seen[p.Slot] {
			t.Fatalf("slot %d appears twice in the partition map", p.Slot)
		}
		seen[p.Slot] = true
	}
	if len(seen) != h.store.Entry("E").Slots {
		t.Fatalf("partition map covers %d slots, want %d", len(seen), h.store.Entry("E").Slots)
	}

	deadSeen := false
	for _, m := range st.Members {
		if m.Name == "m1" && m.State == StateDead {
			deadSeen = true
		}
	}
	if !deadSeen {
		t.Fatalf("status does not report the crashed donor as dead: %+v", st.Members)
	}
}
