package cluster

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sort"

	"parajoin/internal/colbatch"
	"parajoin/internal/engine"
	"parajoin/internal/rel"
)

// Member-side fragment execution (DESIGN.md, "Distributed execution").
//
// A member is more than a durable shard holder: on frag-prepare it builds a
// per-generation engine runtime — a partial view of an n-worker cluster in
// which it hosts exactly the worker whose index matches its position in the
// sorted member list, loaded with the rendezvous slice its local store
// already holds — and on frag-run it executes the coordinator's serialized
// rounds against that runtime, exchanging tuples directly with its peers
// over the engine's self-healing TCP transport and streaming only its
// result fragment back to the coordinator as colbatch chunks.
//
// The runtime is keyed on the catalog version: any membership or data
// change bumps the version, so a stale runtime can never serve a query
// planned against a newer generation — the member answers with a retryable
// error instead and the coordinator's next dispatch (after its own rebuild)
// re-prepares it.

// fragChunkRows is how many result tuples travel per frag-rows frame —
// comfortably under colbatch.MaxRows while keeping frames small enough to
// interleave with other traffic.
const fragChunkRows = 8192

// fragRuntime is one generation's engine view on a member.
type fragRuntime struct {
	gen     int64
	members []string
	worker  int
	eng     *engine.Cluster
	tcp     *engine.TCPTransport
	addr    string // this member's exchange listener
}

func (rt *fragRuntime) close() {
	if rt != nil && rt.eng != nil {
		rt.eng.Close()
	}
}

// sameMembers reports whether the runtime was built for exactly this
// membership (the catalog version should imply it, but trust and verify).
func (rt *fragRuntime) sameMembers(members []string) bool {
	if len(rt.members) != len(members) {
		return false
	}
	for i, m := range rt.members {
		if m != members[i] {
			return false
		}
	}
	return true
}

// exchangeHost derives the bind host for the member's exchange listener from
// its transfer listener, so both are reachable at the same interface.
func (m *Member) exchangeHost() string {
	m.mu.Lock()
	ln := m.ln
	m.mu.Unlock()
	if ln == nil {
		return "127.0.0.1"
	}
	host, _, err := net.SplitHostPort(ln.Addr().String())
	if err != nil || host == "" || host == "::" || host == "0.0.0.0" {
		return "127.0.0.1"
	}
	return host
}

// handleFragPrepare builds (or confirms) the engine runtime for one
// generation and replies with the member's exchange-listener address.
func (m *Member) handleFragPrepare(req *msg) *msg {
	if len(req.Members) == 0 {
		return &msg{Type: msgErr, Err: "cluster: frag-prepare without members"}
	}
	if !sort.StringsAreSorted(req.Members) {
		return &msg{Type: msgErr, Err: "cluster: frag-prepare members not sorted"}
	}
	worker := sort.SearchStrings(req.Members, m.cfg.Name)
	if worker >= len(req.Members) || req.Members[worker] != m.cfg.Name {
		return &msg{Type: msgErr, Err: fmt.Sprintf("cluster: member %q not in fragment membership %v",
			m.cfg.Name, req.Members), Retryable: true}
	}
	if v := m.store.CatalogVersion(); v != req.CatalogVersion {
		// The coordinator's commit broadcast hasn't landed here (or a newer
		// one already has). Either way the dispatcher should retry after its
		// own generation settles.
		return &msg{Type: msgErr, Err: fmt.Sprintf("cluster: member %q at catalog v%d, dispatch wants v%d",
			m.cfg.Name, v, req.CatalogVersion), Retryable: true}
	}

	m.fragMu.Lock()
	defer m.fragMu.Unlock()
	if rt := m.frag; rt != nil && rt.gen == req.CatalogVersion && rt.sameMembers(req.Members) {
		return &msg{Type: msgFragReady, Addr: rt.addr}
	}

	rt, err := m.buildFragRuntime(req, worker)
	if err != nil {
		return &msg{Type: msgErr, Err: err.Error()}
	}
	old := m.frag
	m.frag = rt
	old.close()
	fragPrepares.Inc()
	m.cfg.Logf("cluster: member %q fragment runtime ready for catalog v%d (worker %d/%d, exchange %s)",
		m.cfg.Name, rt.gen, rt.worker, len(rt.members), rt.addr)
	return &msg{Type: msgFragReady, Addr: rt.addr}
}

// buildFragRuntime assembles a generation's engine: a one-hosted-worker
// partial cluster over a fresh TCP transport, loaded with this member's
// rendezvous slice of every relation. Loading mirrors OpenFromStore exactly
// — SlotsFor order, empty relations for slotless members — which is what
// makes the distributed answer byte-identical to the coordinator-local one:
// the segment bytes themselves were checksum-verified on arrival, so
// member-local slots equal the authoritative store's.
func (m *Member) buildFragRuntime(req *msg, worker int) (*fragRuntime, error) {
	n := len(req.Members)
	addrs := make([]string, n)
	addrs[worker] = net.JoinHostPort(m.exchangeHost(), "0")
	tcp, err := engine.NewTCPTransportOpts(addrs, []int{worker}, engine.TCPOptions{})
	if err != nil {
		return nil, fmt.Errorf("cluster: member %q exchange listener: %w", m.cfg.Name, err)
	}
	eng := engine.NewPartialCluster(n, []int{worker}, tcp)
	for _, meta := range req.Metas {
		slots := SlotsFor(req.Members, meta.Name, meta.Slots, m.cfg.Name)
		var frag *rel.Relation
		if len(slots) == 0 {
			frag = rel.New(meta.Name, meta.Columns...)
		} else {
			frag, err = m.store.LoadSlots(meta.Name, slots)
			if err != nil {
				eng.Close()
				return nil, fmt.Errorf("cluster: member %q loading %s%v: %w", m.cfg.Name, meta.Name, slots, err)
			}
		}
		frags := make([]*rel.Relation, n)
		frags[worker] = frag
		eng.LoadFragments(meta.Name, frags)
	}
	return &fragRuntime{
		gen:     req.CatalogVersion,
		members: req.Members,
		worker:  worker,
		eng:     eng,
		tcp:     tcp,
		addr:    tcp.Addrs()[worker],
	}, nil
}

// handleFragRun executes one query's fragment and streams the result back
// on the same connection: zero or more frag-rows frames, then frag-done.
// Unlike every other transfer exchange it owns the connection for the
// query's whole duration; the connection doubles as the cancellation
// signal — the dispatcher sends nothing after frag-run, so any read
// completing early means the coordinator hung up (query canceled, member
// declared dead, coordinator died) and the run is aborted.
func (m *Member) handleFragRun(conn net.Conn, req *msg) {
	reply := func(rm *msg) {
		writeMsg(conn, m.cfg.CallTimeout, rm)
	}
	m.fragMu.Lock()
	rt := m.frag
	m.fragMu.Unlock()
	if rt == nil || rt.gen != req.CatalogVersion {
		have := int64(-1)
		if rt != nil {
			have = rt.gen
		}
		reply(&msg{Type: msgFragDone, Err: fmt.Sprintf(
			"cluster: member %q has fragment runtime v%d, dispatch wants v%d (re-prepare)",
			m.cfg.Name, have, req.CatalogVersion), Retryable: true})
		return
	}
	if len(req.Addrs) != len(rt.members) {
		reply(&msg{Type: msgFragDone, Err: fmt.Sprintf(
			"cluster: frag-run carries %d exchange addrs for %d members", len(req.Addrs), len(rt.members))})
		return
	}
	rounds, err := engine.DecodeRounds(req.Rounds)
	if err != nil {
		reply(&msg{Type: msgFragDone, Err: err.Error()})
		return
	}
	rt.tcp.SetPeerAddrs(req.Addrs)

	opts := engine.RunOpts{Epoch: req.Epoch}
	if o := req.RunOpts; o != nil {
		opts.MaxLocalTuples = o.MaxLocalTuples
		opts.Spill = engine.SpillPolicy(o.Spill)
		opts.MaxSpillBytes = o.MaxSpillBytes
		opts.Parallelism = o.Parallelism
	}

	// The watcher turns a dropped dispatcher connection into a run
	// cancellation. It reads at most one byte (the protocol sends none), so
	// it can never consume a real frame.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	watchDone := make(chan struct{})
	go func() {
		defer close(watchDone)
		buf := make([]byte, 1)
		conn.Read(buf)
		cancel()
	}()

	out, report, err := rt.eng.RunRoundsOpts(ctx, rounds, opts)
	if err != nil {
		fragRunErrors.Inc()
		// A runtime closed mid-query means the generation moved under us —
		// retryable from the coordinator's perspective, like any resize.
		// Checking the engine directly catches the teardown errors that
		// wrap neither sentinel (e.g. "transport closed" from a Send that
		// raced the close).
		retry := engine.Retryable(err) || errors.Is(err, engine.ErrClosed) || rt.eng.Closed()
		reply(&msg{Type: msgFragDone, Err: err.Error(), Retryable: retry})
		return
	}

	var enc colbatch.Encoder
	for off := 0; off < len(out.Tuples); off += fragChunkRows {
		end := min(off+fragChunkRows, len(out.Tuples))
		data, err := enc.AppendTuples(nil, out.Tuples[off:end])
		if err != nil {
			reply(&msg{Type: msgFragDone, Err: fmt.Sprintf("cluster: encoding result chunk: %v", err)})
			return
		}
		if err := writeMsg(conn, m.cfg.CallTimeout, &msg{Type: msgFragRows, Data: data}); err != nil {
			return // coordinator is gone; nothing left to tell it
		}
		fragRowsStreamed.Add(int64(end - off))
	}
	fragRunsServed.Inc()
	reply(&msg{Type: msgFragDone, Schema: out.Schema, Report: report})
	_ = watchDone
}

// closeFragRuntime tears down the member's engine runtime (if any).
func (m *Member) closeFragRuntime() {
	m.fragMu.Lock()
	rt := m.frag
	m.frag = nil
	m.fragMu.Unlock()
	rt.close()
}
