package cluster

import (
	"fmt"
	"strings"

	"parajoin/internal/core"
	"parajoin/internal/partstore"
	"parajoin/internal/shares"
	"parajoin/internal/stats"
)

// Resize is the share re-derivation a membership change implies: the
// HyperCube configuration (the paper's Algorithm 1) before and after the
// worker count changed, with the expected per-worker loads and total
// shuffle volumes under each. The coordinator computes one on every resize
// for its logs and trace stream, and cmd/hcconfig -nodes-after exposes the
// same computation offline — one code path, two consumers.
type Resize struct {
	Query                         *core.Query
	WorkersBefore, WorkersAfter   int
	Before, After                 shares.Config
	LoadBefore, LoadAfter         float64
	ShuffledBefore, ShuffledAfter float64
}

// ReDerive runs the share optimizer for both cluster sizes. The catalog
// needs only cardinalities (the share LP sees nothing else), so a catalog
// rebuilt from persisted manifest statistics — no relation data — is
// sufficient.
func ReDerive(q *core.Query, cat *stats.Catalog, workersBefore, workersAfter int) (*Resize, error) {
	r := &Resize{Query: q, WorkersBefore: workersBefore, WorkersAfter: workersAfter}
	var err error
	if r.Before, err = shares.Optimize(q, cat, workersBefore); err != nil {
		return nil, fmt.Errorf("cluster: shares for %d workers: %w", workersBefore, err)
	}
	if r.After, err = shares.Optimize(q, cat, workersAfter); err != nil {
		return nil, fmt.Errorf("cluster: shares for %d workers: %w", workersAfter, err)
	}
	if r.LoadBefore, err = shares.ExpectedLoad(q, cat, r.Before); err != nil {
		return nil, err
	}
	if r.LoadAfter, err = shares.ExpectedLoad(q, cat, r.After); err != nil {
		return nil, err
	}
	if r.ShuffledBefore, err = shares.TuplesShuffled(q, cat, r.Before); err != nil {
		return nil, err
	}
	if r.ShuffledAfter, err = shares.TuplesShuffled(q, cat, r.After); err != nil {
		return nil, err
	}
	return r, nil
}

// String renders the resize in one log-friendly line.
func (r *Resize) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "shares %s (%d workers, load %.0f, shuffled %.0f) -> %s (%d workers, load %.0f, shuffled %.0f)",
		r.Before, r.WorkersBefore, r.LoadBefore, r.ShuffledBefore,
		r.After, r.WorkersAfter, r.LoadAfter, r.ShuffledAfter)
	return b.String()
}

// CatalogFromStore rebuilds a planning-statistics catalog from a store's
// persisted manifest numbers, without touching segment data. Only the
// share optimizer may consume it (cardinalities and per-column distinct
// counts are exact; prefix-distinct counts, which the variable-order search
// needs, require the data and are estimated).
func CatalogFromStore(store *partstore.Store) *stats.Catalog {
	cat := stats.NewCatalog()
	for _, e := range store.Relations() {
		cat.AddStats(stats.Precomputed(e.Name, int(e.Cardinality), e.ColumnDistinct))
	}
	return cat
}
