// Package cluster implements elastic membership for parajoin: a coordinator
// that admits and monitors workers over TCP, a rendezvous-hashed assignment
// of persisted hash partitions (internal/partstore) to live member names,
// and a checksum-verified handoff protocol that moves partitions when the
// membership changes.
//
// The design splits responsibilities the way the paper's architecture does:
// the coordinator owns the authoritative partition store and the planning
// path, while members are durable data nodes that each persist their slice
// of every relation. Ownership is a pure function of the live member names
// (highest-random-weight hashing), so a membership change moves only ~1/N of
// the slots, and a replacement process started under its predecessor's name
// re-owns exactly the predecessor's slice — usually without moving a byte,
// because the hello message carries a checksummed inventory of what the
// rejoining store already holds.
//
// Handoffs preserve one invariant: a partition's previous owner releases it
// only after the new owner has acknowledged a checksum-verified copy. If the
// donor dies inside that window, the coordinator falls back to pushing the
// partition from its own store; puts are idempotent, and the assignment
// function names exactly one owner per slot, so a crash mid-handoff can
// neither lose nor duplicate a partition.
//
// On every membership change the coordinator bumps the catalog version,
// broadcasts it, and re-derives HyperCube shares for the new worker count
// (ReDerive); the same computation backs cmd/hcconfig -nodes-after.
package cluster
