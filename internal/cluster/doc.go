// Package cluster implements elastic membership for parajoin: a coordinator
// that admits and monitors workers over TCP, a rendezvous-hashed assignment
// of persisted hash partitions (internal/partstore) to live member names,
// and a checksum-verified handoff protocol that moves partitions when the
// membership changes.
//
// The design splits responsibilities the way the paper's architecture does:
// the coordinator owns the authoritative partition store and the planning
// path, while members are durable data nodes that each persist their slice
// of every relation. Ownership is a pure function of the live member names
// (highest-random-weight hashing), so a membership change moves only ~1/N of
// the slots, and a replacement process started under its predecessor's name
// re-owns exactly the predecessor's slice — usually without moving a byte,
// because the hello message carries a checksummed inventory of what the
// rejoining store already holds.
//
// Handoffs preserve one invariant: a partition's previous owner releases it
// only after the new owner has acknowledged a checksum-verified copy. If the
// donor dies inside that window, the coordinator falls back to pushing the
// partition from its own store; puts are idempotent, and the assignment
// function names exactly one owner per slot, so a crash mid-handoff can
// neither lose nor duplicate a partition.
//
// On every membership change the coordinator bumps the catalog version,
// broadcasts it, and re-derives HyperCube shares for the new worker count
// (ReDerive); the same computation backs cmd/hcconfig -nodes-after.
//
// # Distributed execution
//
// Beyond holding data, members execute queries. The coordinator plans a
// query into engine rounds, and a Dispatcher pushes one operator fragment
// per live member over the same transfer connections that move partitions
// (fragment.go holds the member side, dispatch.go the coordinator side):
//
//   - frag-prepare: the member builds a single-worker partial engine over
//     its rendezvous-assigned slots and binds a TCP exchange listener; the
//     reply carries the exchange address. Prepares are cached per catalog
//     generation and torn down when the generation changes.
//   - frag-run: the member receives the serialized rounds plus every
//     peer's exchange address, runs its fragment (workers shuffle tuples
//     directly member-to-member, never through the coordinator), and
//     streams its result back in columnar batches (frag-rows) followed by
//     a frag-done trailer with the schema and the engine report.
//
// Every dispatch is guarded by the catalog version: a member whose store
// is at a different generation refuses with a retryable error rather than
// compute on stale partitions. Any dispatch failure — a dead member, a
// refused generation, a broken stream — wraps engine.ErrTransport, which
// the serving layer's retry budget re-dispatches after the coordinator's
// next rebuild; the first fragment failure cancels its sibling fragments
// so a dead peer costs one round trip, not a redial budget.
//
// The coordinator concatenates fragment results in member (worker) order,
// so a distributed answer is byte-identical to the coordinator-local run
// of the same plan over the same generation. See DESIGN.md, "Distributed
// execution", for the full lifecycle and the merge-order invariant.
package cluster
