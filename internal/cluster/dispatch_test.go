package cluster

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"parajoin/internal/core"
	"parajoin/internal/engine"
	"parajoin/internal/hypercube"
	"parajoin/internal/rel"
	"parajoin/internal/shares"
)

// pathRounds builds a one-round two-way self-join over E(src, dst):
// P(src, dst, dst2) via E ⋈ E on dst = src2 — a plan that forces a real
// shuffle between workers, so a multi-member dispatch exercises the
// member-to-member exchange transport, not just local scans.
func pathRounds() []engine.Round {
	return []engine.Round{{
		Name: "path",
		Plan: &engine.Plan{
			Exchanges: []engine.ExchangeSpec{
				{ID: 0, Kind: engine.RouteHash, HashCols: []string{"dst"}, Input: engine.Scan{Table: "E"}},
				{ID: 1, Kind: engine.RouteHash, HashCols: []string{"src"}, Input: engine.Scan{Table: "E"}},
			},
			Root: engine.HashJoin{
				Left:     engine.Recv{Exchange: 0, Schema: rel.Schema{"src", "dst"}},
				Right:    engine.Recv{Exchange: 1, Schema: rel.Schema{"src2", "dst2"}},
				LeftCols: []string{"dst"}, RightCols: []string{"src2"},
			},
		},
	}}
}

// triangleRounds builds a HyperCube + Tributary triangle plan over E. The
// Tributary join sorts its inputs before enumeration, so each worker's
// output order is a deterministic function of the tuple SET it receives —
// which makes the serial (worker-concatenated) result byte-identical
// between coordinator-local and distributed execution, independent of
// batch arrival order. Hash-join plans only promise set equality.
func triangleRounds(workers int) []engine.Round {
	q := core.MustQuery("Tri", nil, []core.Atom{
		core.NewAtom("E", core.V("x"), core.V("y")),
		core.NewAtom("E", core.V("y"), core.V("z")),
		core.NewAtom("E", core.V("z"), core.V("x")),
	})
	grid := hypercube.NewGrid(shares.Config{Vars: []core.Var{"x", "y", "z"}, Dims: []int{2, 2, 1}})
	cellMap := make([]int, grid.Cells())
	for i := range cellMap {
		cellMap[i] = i % workers
	}
	schemas := []rel.Schema{{"x", "y"}, {"y", "z"}, {"z", "x"}}
	inputs := make(map[string]engine.Node, len(q.Atoms))
	exchanges := make([]engine.ExchangeSpec, len(q.Atoms))
	for i, a := range q.Atoms {
		exchanges[i] = engine.ExchangeSpec{
			ID: i, Kind: engine.RouteHyperCube, Grid: grid, Atom: a, CellMap: cellMap,
			Input: engine.Scan{Table: "E"},
		}
		inputs[a.Alias] = engine.Recv{Exchange: i, Schema: schemas[i]}
	}
	return []engine.Round{{
		Name: "triangle",
		Plan: &engine.Plan{
			Exchanges: exchanges,
			Root: engine.Tributary{
				Query:  q,
				Inputs: inputs,
				Order:  []core.Var{"x", "y", "z"},
			},
		},
	}}
}

// localRun executes rounds on a coordinator-local engine loaded with exactly
// the per-member fragments the dispatch path uses — the baseline the
// distributed answer must match byte for byte.
func localRun(t *testing.T, h *harness, members []string, rounds []engine.Round) *rel.Relation {
	t.Helper()
	c := engine.NewCluster(len(members))
	defer c.Close()
	e := h.store.Entry("E")
	frags := make([]*rel.Relation, len(members))
	for i, m := range members {
		slots := SlotsFor(members, "E", e.Slots, m)
		if len(slots) == 0 {
			frags[i] = rel.New("E", e.Columns...)
			continue
		}
		frag, err := h.store.LoadSlots("E", slots)
		if err != nil {
			t.Fatal(err)
		}
		frags[i] = frag
	}
	c.LoadFragments("E", frags)
	out, _, err := c.RunRounds(context.Background(), rounds)
	if err != nil {
		t.Fatalf("local run: %v", err)
	}
	return out
}

// sameSerialOrder asserts byte-identical results: same schema, same tuples,
// same serial (worker-concatenation) order — stronger than Equal, which
// sorts first.
func sameSerialOrder(t *testing.T, local, dist *rel.Relation) {
	t.Helper()
	if ls, ds := fmt.Sprint(local.Schema), fmt.Sprint(dist.Schema); ls != ds {
		t.Fatalf("schema mismatch: local %s vs distributed %s", ls, ds)
	}
	if len(local.Tuples) != len(dist.Tuples) {
		t.Fatalf("cardinality mismatch: local %d vs distributed %d", len(local.Tuples), len(dist.Tuples))
	}
	for i := range local.Tuples {
		if !local.Tuples[i].Equal(dist.Tuples[i]) {
			t.Fatalf("tuple %d differs in serial order: local %v vs distributed %v",
				i, local.Tuples[i], dist.Tuples[i])
		}
	}
}

// TestFragmentDispatchMatchesLocal runs the same plan coordinator-locally
// and via fragment dispatch at 1, 2, and 3 members and requires the answers
// to agree in serial order — the byte-identical-merge invariant.
func TestFragmentDispatchMatchesLocal(t *testing.T) {
	for n := 1; n <= 3; n++ {
		t.Run(fmt.Sprintf("members=%d", n), func(t *testing.T) {
			h := newHarness(t, 400, 6)
			var names []string
			for i := 0; i < n; i++ {
				names = append(names, fmt.Sprintf("m%d", i))
			}
			for _, name := range names {
				h.startMember(name, "", MemberConfig{})
			}
			// Drain intermediate commits until the full membership lands.
			h.waitForEventually(names...)

			d := NewDispatcher(h.store, h.coord.Endpoints(), DispatcherConfig{Logf: t.Logf})

			// Tributary plan: per-worker output is a deterministic function
			// of the received tuple set, so the merged result must match the
			// coordinator-local run in serial order — byte-identical.
			out, report, err := dispatchWithRetry(t, d, triangleRounds(n))
			if err != nil {
				t.Fatalf("dispatch: %v", err)
			}
			if report.RemoteFragments != n {
				t.Fatalf("report says %d remote fragments, want %d", report.RemoteFragments, n)
			}
			if len(report.RemoteMembers) != n {
				t.Fatalf("report names %v, want %d members", report.RemoteMembers, n)
			}
			local := localRun(t, h, names, triangleRounds(n))
			if len(local.Tuples) == 0 {
				t.Fatal("baseline produced no triangles; test data too sparse")
			}
			sameSerialOrder(t, local, out)

			// Hash-join plan: batch arrival order may differ, so the promise
			// is set equality; a second dispatch also proves epoch blocks
			// advance cleanly through reused runtimes.
			pout, _, err := dispatchWithRetry(t, d, pathRounds())
			if err != nil {
				t.Fatalf("path dispatch: %v", err)
			}
			plocal := localRun(t, h, names, pathRounds())
			if len(plocal.Tuples) == 0 {
				t.Fatal("path baseline produced no tuples")
			}
			if !plocal.Equal(pout) {
				t.Fatalf("distributed path result differs as a set: local %d vs distributed %d tuples",
					len(plocal.Tuples), len(pout.Tuples))
			}
		})
	}
}

// dispatchWithRetry plays the serving layer's role: a retryable failure
// (e.g. a generation still settling after concurrent joins) gets the query
// re-dispatched after a short pause, exactly as the server's retry budget
// would.
func dispatchWithRetry(t *testing.T, d *Dispatcher, rounds []engine.Round) (*rel.Relation, *engine.Report, error) {
	t.Helper()
	var (
		out    *rel.Relation
		report *engine.Report
		err    error
	)
	for attempt := 0; attempt < 100; attempt++ {
		out, report, err = d.RunRounds(context.Background(), rounds, engine.RunOpts{})
		if err == nil || !engine.Retryable(err) {
			return out, report, err
		}
		time.Sleep(20 * time.Millisecond)
	}
	return out, report, err
}

// waitForEventually drains membership changes until the wanted set commits.
func (h *harness) waitForEventually(want ...string) {
	h.t.Helper()
	deadline := time.After(15 * time.Second)
	for {
		select {
		case got := <-h.changes:
			if equalNames(got, want) {
				return
			}
		case <-deadline:
			h.t.Fatalf("timed out waiting for membership %v", want)
		}
	}
}

// TestFragmentDispatchMemberDeathIsRetryable kills a member mid-query and
// requires the dispatcher to fail with a transport-class error — the class
// the serving layer's retry budget re-dispatches after the next rebuild.
func TestFragmentDispatchMemberDeathIsRetryable(t *testing.T) {
	h := newHarness(t, 2000, 6)
	tm0 := h.startMember("m0", "", MemberConfig{})
	h.waitForEventually("m0")
	tm1 := h.startMember("m1", "", MemberConfig{})
	h.waitForEventually("m0", "m1")
	_ = tm0

	d := NewDispatcher(h.store, h.coord.Endpoints(), DispatcherConfig{Logf: t.Logf})
	// Prepare first so the kill lands mid-run, not mid-prepare.
	if _, _, err := dispatchWithRetry(t, d, pathRounds()); err != nil {
		t.Fatalf("warmup dispatch: %v", err)
	}

	killed := make(chan struct{})
	go func() {
		time.Sleep(5 * time.Millisecond)
		tm1.m.Close()
		// The serving layer closes a superseded generation's dispatcher on
		// the membership commit; mirror it here. Without the close, one
		// interleaving hangs forever: m1's fragment completes and THEN m1
		// dies while m0 is still mid-exchange — the tuples m1 had in flight
		// die with it, m0's Recv never wakes, and no connection the
		// dispatcher holds reports an error.
		deadline := time.After(15 * time.Second)
		for {
			var done bool
			select {
			case got := <-h.changes:
				done = equalNames(got, []string{"m0"})
			case <-deadline:
				done = true
			}
			if done {
				break
			}
		}
		d.Close()
		close(killed)
	}()
	var err error
	for i := 0; i < 200; i++ {
		_, _, err = d.RunRounds(context.Background(), pathRounds(), engine.RunOpts{})
		if err != nil {
			break
		}
	}
	<-killed
	if err == nil {
		// The member died between queries rather than mid-stream; the next
		// dispatch must still surface the loss.
		_, _, err = d.RunRounds(context.Background(), pathRounds(), engine.RunOpts{})
	}
	if err == nil {
		t.Fatal("dispatch kept succeeding after a member died")
	}
	if !engine.Retryable(err) {
		t.Fatalf("member death produced a non-retryable error: %v", err)
	}
}

// TestFragmentPrepareGenerationMismatch asserts the protocol's staleness
// guard: a dispatch planned against a catalog version the member does not
// have is refused with a retryable error instead of computing on wrong data.
func TestFragmentPrepareGenerationMismatch(t *testing.T) {
	h := newHarness(t, 100, 4)
	h.startMember("m0", "", MemberConfig{})
	h.waitForEventually("m0")

	d := NewDispatcher(h.store, h.coord.Endpoints(), DispatcherConfig{Logf: t.Logf})
	// Sabotage the generation: bump the authoritative catalog without the
	// member hearing about it.
	if _, err := h.store.BumpCatalog(); err != nil {
		t.Fatal(err)
	}
	_, _, err := d.RunRounds(context.Background(), pathRounds(), engine.RunOpts{})
	if err == nil {
		t.Fatal("dispatch against a stale member generation succeeded")
	}
	if !engine.Retryable(err) {
		t.Fatalf("generation mismatch produced a non-retryable error: %v", err)
	}
	if !strings.Contains(err.Error(), "catalog") {
		t.Fatalf("error does not name the catalog mismatch: %v", err)
	}
}

// TestFragmentRunCancellation cancels the caller's context mid-dispatch and
// requires the context error (not a transport error) back.
func TestFragmentRunCancellation(t *testing.T) {
	h := newHarness(t, 3000, 6)
	h.startMember("m0", "", MemberConfig{})
	h.waitForEventually("m0")

	d := NewDispatcher(h.store, h.coord.Endpoints(), DispatcherConfig{Logf: t.Logf})
	if _, _, err := dispatchWithRetry(t, d, pathRounds()); err != nil {
		t.Fatalf("warmup dispatch: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := d.RunRounds(ctx, pathRounds(), engine.RunOpts{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled dispatch returned %v, want context.Canceled", err)
	}
}
