package metrics

import (
	"context"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// QueryProgress is the live progress record of one in-flight query. The
// serving layer creates one per query, threads it through the run context
// (WithQuery), and the engine updates it from the execution hot path —
// every mutator is a single atomic store/add and is safe on a nil receiver,
// so engine code can update unconditionally whether or not a serving layer
// is present.
type QueryProgress struct {
	id    int64
	rule  string
	start time.Time

	stage      atomic.Pointer[string]
	attempt    atomic.Int64
	tuples     atomic.Int64
	memTuples  atomic.Int64
	spillBytes atomic.Int64
}

// NewQueryProgress creates a progress record for a query identified by id
// running rule.
func NewQueryProgress(id int64, rule string) *QueryProgress {
	p := &QueryProgress{id: id, rule: rule, start: time.Now()}
	p.SetStage("queued")
	p.attempt.Store(1)
	return p
}

// SetStage records the query's current lifecycle stage ("queued",
// "planning", "executing round 2/3", ...).
func (p *QueryProgress) SetStage(stage string) {
	if p == nil {
		return
	}
	p.stage.Store(&stage)
}

// SetAttempt records the execution attempt number (1 for the first run).
func (p *QueryProgress) SetAttempt(n int64) {
	if p == nil {
		return
	}
	p.attempt.Store(n)
}

// AddTuples counts result tuples produced so far.
func (p *QueryProgress) AddTuples(n int64) {
	if p == nil {
		return
	}
	p.tuples.Add(n)
}

// AddMemTuples moves the query's charged in-memory tuple reservation
// (negative on release).
func (p *QueryProgress) AddMemTuples(n int64) {
	if p == nil {
		return
	}
	p.memTuples.Add(n)
}

// AddSpillBytes counts bytes the query has spilled to disk so far.
func (p *QueryProgress) AddSpillBytes(n int64) {
	if p == nil {
		return
	}
	p.spillBytes.Add(n)
}

// QuerySnapshot is a point-in-time copy of one in-flight query's progress —
// the row shape behind /debug/queries.
type QuerySnapshot struct {
	ID         int64         `json:"id"`
	Rule       string        `json:"rule"`
	Stage      string        `json:"stage"`
	Elapsed    time.Duration `json:"elapsed"`
	Attempt    int64         `json:"attempt"`
	Tuples     int64         `json:"tuples"`
	MemTuples  int64         `json:"mem_tuples"`
	SpillBytes int64         `json:"spill_bytes"`
}

func (p *QueryProgress) snapshot(now time.Time) QuerySnapshot {
	stage := ""
	if s := p.stage.Load(); s != nil {
		stage = *s
	}
	return QuerySnapshot{
		ID:         p.id,
		Rule:       p.rule,
		Stage:      stage,
		Elapsed:    now.Sub(p.start),
		Attempt:    p.attempt.Load(),
		Tuples:     p.tuples.Load(),
		MemTuples:  p.memTuples.Load(),
		SpillBytes: p.spillBytes.Load(),
	}
}

var inflight struct {
	mu      sync.Mutex
	queries map[*QueryProgress]struct{}
}

// TrackQuery adds p to the process-wide in-flight table. Pair with
// UntrackQuery when the query finishes.
func TrackQuery(p *QueryProgress) {
	if p == nil {
		return
	}
	inflight.mu.Lock()
	if inflight.queries == nil {
		inflight.queries = make(map[*QueryProgress]struct{})
	}
	inflight.queries[p] = struct{}{}
	inflight.mu.Unlock()
}

// UntrackQuery removes p from the in-flight table.
func UntrackQuery(p *QueryProgress) {
	if p == nil {
		return
	}
	inflight.mu.Lock()
	delete(inflight.queries, p)
	inflight.mu.Unlock()
}

// InflightQueries snapshots every tracked query, ordered by query id.
func InflightQueries() []QuerySnapshot {
	now := time.Now()
	inflight.mu.Lock()
	out := make([]QuerySnapshot, 0, len(inflight.queries))
	for p := range inflight.queries {
		out = append(out, p.snapshot(now))
	}
	inflight.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

type queryCtxKey struct{}

// WithQuery attaches a progress record to ctx for the engine to find.
func WithQuery(ctx context.Context, p *QueryProgress) context.Context {
	if p == nil {
		return ctx
	}
	return context.WithValue(ctx, queryCtxKey{}, p)
}

// QueryFrom extracts the progress record from ctx (nil when absent — and
// every QueryProgress method tolerates nil, so callers never need to check).
func QueryFrom(ctx context.Context) *QueryProgress {
	if ctx == nil {
		return nil
	}
	p, _ := ctx.Value(queryCtxKey{}).(*QueryProgress)
	return p
}
