package metrics

import (
	"bytes"
	"context"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_total", "a counter")
	c.Inc()
	c.Add(4)
	c.Add(-7) // ignored: counters are monotone
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	g := r.Gauge("test_gauge", "a gauge")
	g.Set(10)
	g.Add(-3)
	if got := g.Value(); got != 7 {
		t.Fatalf("gauge = %d, want 7", got)
	}
	// Same name+labels returns the same handle.
	if r.Counter("test_total", "a counter") != c {
		t.Fatal("re-registration returned a different counter")
	}
	// Different labels are distinct series.
	if r.Counter("test_total", "a counter", Label{"k", "v"}) == c {
		t.Fatal("labeled series aliased the unlabeled one")
	}
}

func TestHistogramObserveAndQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "latency", []float64{0.1, 0.5, 1, 5})
	for _, v := range []float64{0.05, 0.2, 0.3, 0.7, 2, 10} {
		h.Observe(v)
	}
	if h.Count() != 6 {
		t.Fatalf("count = %d, want 6", h.Count())
	}
	if math.Abs(h.Sum()-13.25) > 1e-9 {
		t.Fatalf("sum = %g, want 13.25", h.Sum())
	}
	if h.Max() != 10 {
		t.Fatalf("max = %g, want 10", h.Max())
	}
	p50 := h.Quantile(0.5)
	p95 := h.Quantile(0.95)
	if p50 <= 0 || p95 <= 0 {
		t.Fatalf("quantiles must be positive: p50=%g p95=%g", p50, p95)
	}
	if p50 > p95 {
		t.Fatalf("p50 %g > p95 %g", p50, p95)
	}
	if p95 > h.Max() {
		t.Fatalf("p95 %g exceeds max %g", p95, h.Max())
	}
	if q := h.Quantile(1); q != 10 {
		t.Fatalf("q=1 should return max, got %g", q)
	}
	// A single sample far below its bucket's upper bound: interpolation
	// must not overshoot the tracked max (p50 <= p95 <= p99 <= max is the
	// invariant benchcheck enforces on benchrunner's digest).
	lone := r.Histogram("lone_seconds", "one sample", DurationBuckets)
	lone.Observe(0.0263)
	for _, q := range []float64{0.5, 0.95, 0.99} {
		if v := lone.Quantile(q); v > lone.Max() {
			t.Fatalf("Quantile(%g) = %g exceeds max %g", q, v, lone.Max())
		}
	}
	if p50, p99 := lone.Quantile(0.5), lone.Quantile(0.99); p50 > p99 {
		t.Fatalf("single sample: p50 %g > p99 %g", p50, p99)
	}

	var empty Histogram
	if (&empty).Quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile should be 0")
	}
}

// TestObserveZeroAlloc is an acceptance criterion: the hot-path Observe
// (and Counter.Add) must not allocate.
func TestObserveZeroAlloc(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("alloc_seconds", "alloc test", DurationBuckets)
	c := r.Counter("alloc_total", "alloc test")
	g := r.Gauge("alloc_gauge", "alloc test")
	if n := testing.AllocsPerRun(1000, func() {
		h.Observe(0.042)
	}); n != 0 {
		t.Fatalf("Histogram.Observe allocates %v per call, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() {
		c.Add(1)
		g.Add(-1)
	}); n != 0 {
		t.Fatalf("Counter.Add/Gauge.Add allocate %v per call, want 0", n)
	}
}

func TestWritePrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_total", "b counter", Label{"outcome", "ok"}).Add(3)
	r.Counter("b_total", "b counter", Label{"outcome", "oom"}).Add(1)
	r.Gauge("a_gauge", "a gauge").Set(-2)
	h := r.Histogram("c_seconds", "c hist", []float64{0.5, 1})
	h.Observe(0.25)
	h.Observe(0.75)
	h.Observe(2)

	var b bytes.Buffer
	r.WritePrometheus(&b)
	got := b.String()

	want := strings.Join([]string{
		"# HELP a_gauge a gauge",
		"# TYPE a_gauge gauge",
		"a_gauge -2",
		"# HELP b_total b counter",
		"# TYPE b_total counter",
		`b_total{outcome="ok"} 3`,
		`b_total{outcome="oom"} 1`,
		"# HELP c_seconds c hist",
		"# TYPE c_seconds histogram",
		`c_seconds_bucket{le="0.5"} 1`,
		`c_seconds_bucket{le="1"} 2`,
		`c_seconds_bucket{le="+Inf"} 3`,
		"c_seconds_sum 3",
		"c_seconds_count 3",
		"",
	}, "\n")
	if got != want {
		t.Fatalf("exposition mismatch:\n got:\n%s\nwant:\n%s", got, want)
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("esc_total", "", Label{"q", `a"b\c` + "\n"}).Inc()
	var b bytes.Buffer
	r.WritePrometheus(&b)
	want := `esc_total{q="a\"b\\c\n"} 1`
	if !strings.Contains(b.String(), want) {
		t.Fatalf("escaped sample %q not found in:\n%s", want, b.String())
	}
}

func TestConcurrentObserveRace(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("race_seconds", "race", DurationBuckets)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				h.Observe(float64(i*j) * 0.001)
				r.Counter("race_total", "race").Inc()
			}
		}(i)
	}
	// Scrape concurrently with observation.
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var b bytes.Buffer
			r.WritePrometheus(&b)
		}()
	}
	wg.Wait()
	if h.Count() != 8000 {
		t.Fatalf("count = %d, want 8000", h.Count())
	}
	if r.Counter("race_total", "race").Value() != 8000 {
		t.Fatal("counter lost increments under contention")
	}
}

func TestInflightTable(t *testing.T) {
	p := NewQueryProgress(42, "T(x) :- E(x,y)")
	TrackQuery(p)
	defer UntrackQuery(p)
	p.SetStage("executing round 1/2")
	p.SetAttempt(2)
	p.AddTuples(100)
	p.AddMemTuples(50)
	p.AddMemTuples(-10)
	p.AddSpillBytes(4096)

	time.Sleep(time.Millisecond)
	snaps := InflightQueries()
	var found *QuerySnapshot
	for i := range snaps {
		if snaps[i].ID == 42 {
			found = &snaps[i]
		}
	}
	if found == nil {
		t.Fatal("query 42 not in inflight table")
	}
	if found.Stage != "executing round 1/2" || found.Attempt != 2 ||
		found.Tuples != 100 || found.MemTuples != 40 || found.SpillBytes != 4096 {
		t.Fatalf("bad snapshot: %+v", *found)
	}
	if found.Elapsed <= 0 {
		t.Fatal("elapsed should be positive")
	}
	UntrackQuery(p)
	for _, s := range InflightQueries() {
		if s.ID == 42 {
			t.Fatal("query 42 still tracked after UntrackQuery")
		}
	}
}

func TestNilProgressSafe(t *testing.T) {
	var p *QueryProgress
	p.SetStage("x")
	p.SetAttempt(1)
	p.AddTuples(1)
	p.AddMemTuples(1)
	p.AddSpillBytes(1)
	TrackQuery(nil)
	UntrackQuery(nil)
	if QueryFrom(context.Background()) != nil {
		t.Fatal("QueryFrom on bare context should be nil")
	}
	ctx := WithQuery(context.Background(), p)
	if QueryFrom(ctx) != nil {
		t.Fatal("WithQuery(nil) should not store anything")
	}
	real := NewQueryProgress(1, "r")
	if QueryFrom(WithQuery(context.Background(), real)) != real {
		t.Fatal("QueryFrom did not round-trip")
	}
}
