// Package metrics is a dependency-free, lock-sharded metrics registry with
// a Prometheus text-format exposition. It provides the three metric shapes
// production monitoring needs — monotone counters, gauges, and fixed-bucket
// histograms — behind handles whose hot-path operations (Add, Set, Observe)
// are a handful of atomic instructions and allocate nothing.
//
// Registration (Counter/Gauge/Histogram on a Registry) is the slow path: a
// sharded map lookup under a lock, intended to run once per metric at
// package init or server construction. Callers hold the returned handle and
// hammer it from any number of goroutines.
//
// The Default registry is process-wide; internal/debug mounts it at
// /metrics. PublishExpvar bridges legacy expvar names (parajoin_engine,
// parajoin_spill, parajoin_server) so they exist even when no debug server
// is mounted.
package metrics

import (
	"bytes"
	"expvar"
	"fmt"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Label is one name="value" pair attached to a metric. Metrics with the
// same family name but different labels are distinct series reported under
// one # TYPE header.
type Label struct {
	Name, Value string
}

// DurationBuckets are the default latency buckets, in seconds: roughly
// exponential from 500µs to 2 minutes — wide enough to hold both a cached
// point lookup and a spilling 64-worker join without saturating either end.
var DurationBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
	0.25, 0.5, 1, 2.5, 5, 10, 30, 60, 120,
}

// SizeBuckets are the default size buckets (bytes or tuples): powers of
// four from 64 to 256Mi.
var SizeBuckets = []float64{
	64, 256, 1024, 4096, 16384, 65536, 262144,
	1 << 20, 4 << 20, 16 << 20, 64 << 20, 256 << 20,
}

// CountBuckets are the default small-count buckets (task counts, steal
// depths, retry totals): powers of two from 1 to 1024.
var CountBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}

// ---------------------------------------------------------------- registry

// shardCount must be a power of two.
const shardCount = 16

// Registry holds metric families sharded by name hash, so registration and
// exposition from concurrent goroutines contend per shard, not globally.
type Registry struct {
	shards [shardCount]registryShard
}

type registryShard struct {
	mu       sync.RWMutex
	families map[string]*family
}

// Default is the process-wide registry every parajoin subsystem registers
// into; internal/debug serves it at /metrics.
var Default = NewRegistry()

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	r := &Registry{}
	for i := range r.shards {
		r.shards[i].families = make(map[string]*family)
	}
	return r
}

type family struct {
	name, help, typ string
	buckets         []float64 // histograms only

	mu     sync.Mutex
	series map[string]any // rendered label string -> *Counter/*Gauge/*Histogram
}

// fnv-1a; inlined so registration has no hash/maphash dependency surprises.
func hashName(name string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(name); i++ {
		h ^= uint32(name[i])
		h *= 16777619
	}
	return h
}

func (r *Registry) family(name, help, typ string, buckets []float64) *family {
	s := &r.shards[hashName(name)&(shardCount-1)]
	s.mu.RLock()
	f := s.families[name]
	s.mu.RUnlock()
	if f == nil {
		s.mu.Lock()
		f = s.families[name]
		if f == nil {
			f = &family{name: name, help: help, typ: typ, buckets: buckets, series: make(map[string]any)}
			s.families[name] = f
		}
		s.mu.Unlock()
	}
	if f.typ != typ {
		panic(fmt.Sprintf("metrics: %s registered as %s, requested as %s", name, f.typ, typ))
	}
	return f
}

// renderLabels turns labels into their canonical `k="v",...` form (sorted
// by name, values escaped per the Prometheus text format).
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Name < ls[j].Name })
	var b strings.Builder
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	return b.String()
}

func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

// Counter registers (or retrieves) a monotone counter series.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	f := r.family(name, help, "counter", nil)
	key := renderLabels(labels)
	f.mu.Lock()
	defer f.mu.Unlock()
	if m, ok := f.series[key]; ok {
		return m.(*Counter)
	}
	c := &Counter{}
	f.series[key] = c
	return c
}

// Gauge registers (or retrieves) an integer gauge series.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	f := r.family(name, help, "gauge", nil)
	key := renderLabels(labels)
	f.mu.Lock()
	defer f.mu.Unlock()
	if m, ok := f.series[key]; ok {
		return m.(*Gauge)
	}
	g := &Gauge{}
	f.series[key] = g
	return g
}

// Histogram registers (or retrieves) a fixed-bucket histogram series.
// buckets are the upper bounds (le), strictly increasing; a final +Inf
// bucket is implicit. The first registration of a family fixes its bucket
// scheme; later calls for the same family reuse it.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...Label) *Histogram {
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic(fmt.Sprintf("metrics: %s buckets not strictly increasing at %d", name, i))
		}
	}
	f := r.family(name, help, "histogram", buckets)
	key := renderLabels(labels)
	f.mu.Lock()
	defer f.mu.Unlock()
	if m, ok := f.series[key]; ok {
		return m.(*Histogram)
	}
	h := newHistogram(f.buckets)
	f.series[key] = h
	return h
}

// ---------------------------------------------------------------- metrics

// Counter is a monotone int64 counter. Add is one atomic add.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n (n < 0 is ignored: counters only go up).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an int64 gauge. Add and Set are one atomic op each.
type Gauge struct {
	v atomic.Int64
}

// Add moves the gauge by n (negative allowed).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Set replaces the gauge value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-bucket histogram. Observe performs an inline binary
// search over the bounds plus four atomic operations and allocates nothing,
// so it is safe on the engine's per-batch hot path.
type Histogram struct {
	bounds  []float64      // upper bounds, strictly increasing
	counts  []atomic.Int64 // len(bounds)+1; last is the +Inf bucket
	count   atomic.Int64
	sumBits atomic.Uint64 // float64 bits, CAS-accumulated
	maxBits atomic.Uint64 // float64 bits of the largest observation
}

func newHistogram(bounds []float64) *Histogram {
	return &Histogram{
		bounds: bounds,
		counts: make([]atomic.Int64, len(bounds)+1),
	}
}

// Observe records one value. Zero-allocation; safe for concurrent use.
func (h *Histogram) Observe(v float64) {
	// Smallest i with bounds[i] >= v (le semantics); len(bounds) is +Inf.
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if h.bounds[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	h.counts[lo].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			break
		}
	}
	for {
		old := h.maxBits.Load()
		if v <= math.Float64frombits(old) && old != 0 {
			break
		}
		if math.Float64frombits(old) >= v {
			break
		}
		if h.maxBits.CompareAndSwap(old, math.Float64bits(v)) {
			break
		}
	}
}

// ObserveDuration records a duration in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.Observe(d.Seconds())
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Max returns the largest observation (0 when empty).
func (h *Histogram) Max() float64 { return math.Float64frombits(h.maxBits.Load()) }

// Quantile estimates the q-th quantile (0 < q < 1) by linear interpolation
// within the bucket holding the target rank — the same estimate a
// Prometheus histogram_quantile() produces, except the top bucket is capped
// at the tracked maximum instead of extrapolating to +Inf.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q <= 0 {
		q = 0
	}
	if q >= 1 {
		return h.Max()
	}
	rank := q * float64(total)
	var cum int64
	prev := 0.0
	for i := range h.counts {
		c := h.counts[i].Load()
		cum += c
		upper := h.Max()
		if i < len(h.bounds) {
			upper = h.bounds[i]
		}
		if upper < prev {
			upper = prev
		}
		if float64(cum) >= rank {
			v := upper
			if c > 0 {
				frac := (rank - float64(cum-c)) / float64(c)
				v = prev + (upper-prev)*frac
			}
			// Interpolation assumes observations spread across the whole
			// bucket; the tracked max is a hard ceiling on what was actually
			// observed, so clamp (keeps q monotone and p99 <= max even when
			// a bucket holds a single sample far below its upper bound).
			if mx := h.Max(); v > mx {
				v = mx
			}
			return v
		}
		prev = upper
	}
	return h.Max()
}

// ------------------------------------------------------------- exposition

// WritePrometheus writes the registry in the Prometheus text format
// (version 0.0.4): families sorted by name, series sorted by label set,
// histograms with cumulative buckets, _sum, and _count.
func (r *Registry) WritePrometheus(w interface{ Write([]byte) (int, error) }) {
	var fams []*family
	for i := range r.shards {
		s := &r.shards[i]
		s.mu.RLock()
		for _, f := range s.families {
			fams = append(fams, f)
		}
		s.mu.RUnlock()
	}
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	var b bytes.Buffer
	for _, f := range fams {
		f.write(&b)
	}
	w.Write(b.Bytes())
}

func (f *family) write(b *bytes.Buffer) {
	f.mu.Lock()
	keys := make([]string, 0, len(f.series))
	for k := range f.series {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	type row struct {
		labels string
		m      any
	}
	rows := make([]row, 0, len(keys))
	for _, k := range keys {
		rows = append(rows, row{k, f.series[k]})
	}
	f.mu.Unlock()

	if len(rows) == 0 {
		return
	}
	if f.help != "" {
		fmt.Fprintf(b, "# HELP %s %s\n", f.name,
			strings.ReplaceAll(strings.ReplaceAll(f.help, `\`, `\\`), "\n", `\n`))
	}
	fmt.Fprintf(b, "# TYPE %s %s\n", f.name, f.typ)
	for _, r := range rows {
		switch m := r.m.(type) {
		case *Counter:
			writeSample(b, f.name, "", r.labels, "", strconv.FormatInt(m.Value(), 10))
		case *Gauge:
			writeSample(b, f.name, "", r.labels, "", strconv.FormatInt(m.Value(), 10))
		case *Histogram:
			var cum int64
			for i := range m.counts {
				cum += m.counts[i].Load()
				le := "+Inf"
				if i < len(m.bounds) {
					le = formatFloat(m.bounds[i])
				}
				writeSample(b, f.name, "_bucket", r.labels, le, strconv.FormatInt(cum, 10))
			}
			writeSample(b, f.name, "_sum", r.labels, "", formatFloat(m.Sum()))
			writeSample(b, f.name, "_count", r.labels, "", strconv.FormatInt(m.Count(), 10))
		}
	}
}

func writeSample(b *bytes.Buffer, name, suffix, labels, le, value string) {
	b.WriteString(name)
	b.WriteString(suffix)
	if labels != "" || le != "" {
		b.WriteByte('{')
		b.WriteString(labels)
		if le != "" {
			if labels != "" {
				b.WriteByte(',')
			}
			b.WriteString(`le="`)
			b.WriteString(le)
			b.WriteByte('"')
		}
		b.WriteByte('}')
	}
	b.WriteByte(' ')
	b.WriteString(value)
	b.WriteByte('\n')
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Handler returns an http.Handler serving the Default registry.
func Handler() http.Handler { return HandlerFor(Default) }

// HandlerFor returns an http.Handler serving r in the Prometheus text
// format.
func HandlerFor(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}

// ----------------------------------------------------------- expvar bridge

var expvarNames struct {
	mu   sync.Mutex
	seen map[string]bool
}

// PublishExpvar registers f under name in the process expvar table exactly
// once — expvar panics on duplicate names, so subsystems can call this from
// init or constructors without coordinating. It keeps the legacy
// parajoin_engine / parajoin_spill / parajoin_server names alive regardless
// of whether a debug HTTP server is ever mounted.
func PublishExpvar(name string, f func() any) {
	expvarNames.mu.Lock()
	defer expvarNames.mu.Unlock()
	if expvarNames.seen == nil {
		expvarNames.seen = make(map[string]bool)
	}
	if expvarNames.seen[name] {
		return
	}
	expvarNames.seen[name] = true
	expvar.Publish(name, expvar.Func(f))
}
