package colbatch

import "parajoin/internal/metrics"

// counters are the process-wide colbatch counters, registered in the
// metrics registry (scraped at /metrics) and bridged to the
// "parajoin_colbatch" expvar. They aggregate across every payload path —
// exchange frames, spill segments, and wire results.
var counters = struct {
	batchesEncoded *metrics.Counter
	batchesDecoded *metrics.Counter
	bytesEncoded   *metrics.Counter
	bytesDecoded   *metrics.Counter
	bytesRaw       *metrics.Counter
	valuesRaw      *metrics.Counter
	valuesDict     *metrics.Counter
	valuesConst    *metrics.Counter
}{
	batchesEncoded: metrics.Default.Counter("parajoin_colbatch_batches_total",
		"Columnar batches processed.", metrics.Label{Name: "op", Value: "encode"}),
	batchesDecoded: metrics.Default.Counter("parajoin_colbatch_batches_total",
		"Columnar batches processed.", metrics.Label{Name: "op", Value: "decode"}),
	bytesEncoded: metrics.Default.Counter("parajoin_colbatch_bytes_total",
		"Columnar batch bytes (headers included).", metrics.Label{Name: "op", Value: "encode"}),
	bytesDecoded: metrics.Default.Counter("parajoin_colbatch_bytes_total",
		"Columnar batch bytes (headers included).", metrics.Label{Name: "op", Value: "decode"}),
	bytesRaw: metrics.Default.Counter("parajoin_colbatch_raw_bytes_total",
		"Flat-layout equivalent (8 bytes/value) of every encoded batch — compare with encoded bytes for the compression ratio."),
	valuesRaw: metrics.Default.Counter("parajoin_colbatch_values_total",
		"Values encoded, by column encoding.", metrics.Label{Name: "enc", Value: "raw"}),
	valuesDict: metrics.Default.Counter("parajoin_colbatch_values_total",
		"Values encoded, by column encoding.", metrics.Label{Name: "enc", Value: "dict"}),
	valuesConst: metrics.Default.Counter("parajoin_colbatch_values_total",
		"Values encoded, by column encoding.", metrics.Label{Name: "enc", Value: "const"}),
}

// init bridges the counters to a "parajoin_colbatch" expvar so they stay
// visible at /debug/vars without depending on internal/debug.
func init() {
	metrics.PublishExpvar("parajoin_colbatch", func() any { return ReadStats() })
}

// Stats is a snapshot of the process-wide colbatch counters.
type Stats struct {
	// BatchesEncoded and BatchesDecoded count whole batches through the
	// codec; BytesEncoded and BytesDecoded their encoded sizes.
	BatchesEncoded int64
	BatchesDecoded int64
	BytesEncoded   int64
	BytesDecoded   int64
	// BytesRaw is the flat 8-bytes-per-value equivalent of everything
	// encoded; BytesEncoded/BytesRaw is the compression ratio.
	BytesRaw int64
	// ValuesRaw, ValuesDict, and ValuesConst count encoded values by the
	// column encoding that carried them. (ValuesDict+ValuesConst)/total is
	// the dictionary hit rate.
	ValuesRaw   int64
	ValuesDict  int64
	ValuesConst int64
}

// ReadStats snapshots the process-wide counters.
func ReadStats() Stats {
	return Stats{
		BatchesEncoded: counters.batchesEncoded.Value(),
		BatchesDecoded: counters.batchesDecoded.Value(),
		BytesEncoded:   counters.bytesEncoded.Value(),
		BytesDecoded:   counters.bytesDecoded.Value(),
		BytesRaw:       counters.bytesRaw.Value(),
		ValuesRaw:      counters.valuesRaw.Value(),
		ValuesDict:     counters.valuesDict.Value(),
		ValuesConst:    counters.valuesConst.Value(),
	}
}
