// Package colbatch is parajoin's shared binary batch format: a versioned,
// checksummed, dictionary-encoded, column-major layout for tuple batches.
// One format serves all three payload paths — the TCP exchange transport's
// data frames, spill segment files, and the wire protocol's columnar result
// encoding — so bytes written by any of them can be read by the others and
// every path benefits from the same compression.
//
// # Layout
//
// A batch is a 20-byte header followed by a payload of consecutive column
// blocks:
//
//	offset size  field
//	0      4     magic "PJCB"
//	4      1     version (1)
//	5      1     flags (reserved, must be 0)
//	6      2     columns, little-endian uint16
//	8      4     rows, little-endian uint32
//	12     4     payload length in bytes, little-endian uint32
//	16     4     CRC-32 (IEEE) of the payload, little-endian uint32
//
// Each column block starts with one encoding byte:
//
//	const (0): one zigzag varint — every row holds that value
//	raw   (1): rows zigzag varints, the column's values in row order
//	dict  (2): uvarint distinct-count d, then d zigzag varints (the
//	           dictionary, in first-appearance order), then rows uvarint
//	           indexes into it
//
// The encoder picks, per column, whichever encoding is smallest for the
// actual data. Values are attribute values from internal/rel — already
// int64 codes, because rel.Dict interns every string at load time — so the
// dict encoding here is a second-level dictionary: it compresses columns
// whose (string or integer) values repeat within a batch, which is exactly
// the shape dictionary-encoded string workloads produce.
//
// # Reading
//
// Decode validates the magic, version, checksum, and size limits before
// allocating, then materializes the payload into per-column int64 vectors
// backed by a single arena allocation. A receiver can scan columns in place
// (Batch.Col) or materialize rows (Batch.Tuples/Rows) without a per-tuple
// allocation: row headers slice the shared arena with capacity clamps, so
// handing them to an owner that never mutates its inputs is safe.
//
// Batches are capped at MaxRows rows; Append/Decode of larger payloads is
// an error. Larger row sets travel as a stream of concatenated batches
// (AppendRowsStream/DecodeRowsStream), which also bounds what a decoder
// allocates before validating each chunk.
package colbatch
