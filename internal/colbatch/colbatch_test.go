package colbatch

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"math"
	"math/rand"
	"testing"

	"parajoin/internal/rel"
)

func roundTrip(t *testing.T, rows []rel.Tuple) *Batch {
	t.Helper()
	var e Encoder
	data, err := e.AppendTuples(nil, rows)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	b, err := Decode(data)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if b.Rows() != len(rows) {
		t.Fatalf("rows: got %d, want %d", b.Rows(), len(rows))
	}
	got := b.Tuples()
	for i, want := range rows {
		if !got[i].Equal(want) {
			t.Fatalf("row %d: got %v, want %v", i, got[i], want)
		}
	}
	return b
}

func TestRoundTripShapes(t *testing.T) {
	cases := map[string][]rel.Tuple{
		"empty":      nil,
		"single":     {{42}},
		"constant":   {{7, -1}, {7, -1}, {7, -1}},
		"negatives":  {{-1, math.MinInt64}, {-128, math.MaxInt64}, {0, 1}},
		"wide":       {{1, 2, 3, 4, 5, 6, 7, 8}},
		"dictionary": {{100, 5}, {200, 5}, {100, 6}, {200, 5}, {100, 6}, {100, 5}},
	}
	for name, rows := range cases {
		t.Run(name, func(t *testing.T) { roundTrip(t, rows) })
	}
}

func TestRoundTripRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		nrows := rng.Intn(200)
		ncols := 1 + rng.Intn(5)
		rows := make([]rel.Tuple, nrows)
		for i := range rows {
			rows[i] = make(rel.Tuple, ncols)
			for j := range rows[i] {
				switch rng.Intn(3) {
				case 0: // dictionary-friendly: few distinct values
					rows[i][j] = int64(rng.Intn(4))
				case 1: // small ids
					rows[i][j] = int64(rng.Intn(100000))
				default: // full-range values
					rows[i][j] = int64(rng.Uint64())
				}
			}
		}
		roundTrip(t, rows)
	}
}

// TestDictionaryCompresses pins the point of the format: a low-cardinality
// string-code column encodes far below 8 bytes/value.
func TestDictionaryCompresses(t *testing.T) {
	rows := make([]rel.Tuple, 1024)
	for i := range rows {
		rows[i] = rel.Tuple{int64(1_000_000 + i%3), int64(i % 7)}
	}
	var e Encoder
	data, err := e.AppendTuples(nil, rows)
	if err != nil {
		t.Fatal(err)
	}
	raw := 8 * len(rows) * 2
	if len(data)*4 > raw {
		t.Fatalf("dictionary batch is %d bytes; want < 1/4 of the flat %d", len(data), raw)
	}
}

// TestColumnVectors checks the zero-copy column view against the row view.
func TestColumnVectors(t *testing.T) {
	rows := []rel.Tuple{{1, 10}, {2, 20}, {3, 30}}
	b := roundTrip(t, rows)
	if b.Cols() != 2 {
		t.Fatalf("cols: got %d", b.Cols())
	}
	wantCol1 := []int64{10, 20, 30}
	for i, v := range b.Col(1) {
		if v != wantCol1[i] {
			t.Fatalf("col 1: got %v", b.Col(1))
		}
	}
}

// TestTupleArenaIsolation: appending to one materialized tuple must not
// clobber its arena neighbor (capacity clamps).
func TestTupleArenaIsolation(t *testing.T) {
	b := roundTrip(t, []rel.Tuple{{1, 2}, {3, 4}})
	ts := b.Tuples()
	_ = append(ts[0], 99)
	if ts[1][0] != 3 || ts[1][1] != 4 {
		t.Fatalf("arena bleed: row 1 became %v", ts[1])
	}
}

func TestRaggedRowsRejected(t *testing.T) {
	var e Encoder
	if _, err := e.AppendTuples(nil, []rel.Tuple{{1, 2}, {3}}); err == nil {
		t.Fatal("ragged batch encoded without error")
	}
}

func TestEncoderReuse(t *testing.T) {
	var e Encoder
	a, err := e.AppendTuples(nil, []rel.Tuple{{1, 1}, {2, 2}})
	if err != nil {
		t.Fatal(err)
	}
	// Second use with different shape must not inherit scratch state.
	data, err := e.AppendTuples(a, []rel.Tuple{{9, 8, 7}})
	if err != nil {
		t.Fatal(err)
	}
	b1, n, err := DecodeNext(data)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := Decode(data[n:])
	if err != nil {
		t.Fatal(err)
	}
	if b1.Rows() != 2 || b2.Rows() != 1 || b2.Cols() != 3 {
		t.Fatalf("stream decode: %d/%d rows, %d cols", b1.Rows(), b2.Rows(), b2.Cols())
	}
	if got := b2.Tuples()[0]; !got.Equal(rel.Tuple{9, 8, 7}) {
		t.Fatalf("second batch decoded to %v", got)
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	var e Encoder
	data, err := e.AppendTuples(nil, []rel.Tuple{{1, 2}, {3, 4}, {1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	check := func(name string, mutate func([]byte)) {
		bad := append([]byte(nil), data...)
		mutate(bad)
		if _, err := Decode(bad); err == nil {
			t.Errorf("%s: decoded without error", name)
		}
	}
	check("magic", func(b []byte) { b[0] = 'X' })
	check("version", func(b []byte) { b[4] = 99 })
	check("flags", func(b []byte) { b[5] = 1 })
	check("payload flip", func(b []byte) { b[HeaderSize] ^= 0xff })
	check("checksum flip", func(b []byte) { b[16] ^= 0xff })
	check("truncated", func(b []byte) { b[12]++ }) // claims one byte more than present
	if _, err := Decode(data[:HeaderSize-1]); err == nil {
		t.Error("truncated header decoded")
	}
	if _, err := Decode(append(append([]byte(nil), data...), 0)); err == nil {
		t.Error("trailing byte accepted by Decode")
	}
}

// TestDecodeBoundsHostileHeader: a header claiming huge rows/cols must be
// rejected before any proportional allocation.
func TestDecodeBoundsHostileHeader(t *testing.T) {
	hdr := make([]byte, HeaderSize)
	copy(hdr, Magic)
	hdr[4] = Version
	binary.LittleEndian.PutUint16(hdr[6:], 1)
	binary.LittleEndian.PutUint32(hdr[8:], uint32(MaxRows+1))
	binary.LittleEndian.PutUint32(hdr[12:], 0)
	binary.LittleEndian.PutUint32(hdr[16:], crc32.ChecksumIEEE(nil))
	if _, err := Decode(hdr); err == nil {
		t.Fatal("oversized row claim accepted")
	}
	// A valid-looking header with a dict column whose index escapes the
	// dictionary must fail cleanly.
	payload := []byte{encDict}
	payload = binary.AppendUvarint(payload, 1)
	payload = binary.AppendVarint(payload, 5)
	payload = binary.AppendUvarint(payload, 7) // index 7 of 1
	bad := make([]byte, HeaderSize)
	copy(bad, Magic)
	bad[4] = Version
	binary.LittleEndian.PutUint16(bad[6:], 1)
	binary.LittleEndian.PutUint32(bad[8:], 1)
	binary.LittleEndian.PutUint32(bad[12:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(bad[16:], crc32.ChecksumIEEE(payload))
	if _, err := Decode(append(bad, payload...)); err == nil {
		t.Fatal("out-of-range dictionary index accepted")
	}
}

func TestRowsStream(t *testing.T) {
	rows := make([][]int64, 3*streamChunkRows/2)
	for i := range rows {
		rows[i] = []int64{int64(i), int64(i % 5)}
	}
	data, err := AppendRowsStream(nil, rows)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeRowsStream(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(rows) {
		t.Fatalf("rows: got %d, want %d", len(got), len(rows))
	}
	for i := range rows {
		if !bytes.Equal(int64Bytes(got[i]), int64Bytes(rows[i])) {
			t.Fatalf("row %d: got %v, want %v", i, got[i], rows[i])
		}
	}
	// Empty streams are one empty batch, not zero bytes.
	empty, err := AppendRowsStream(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(empty) == 0 {
		t.Fatal("empty stream encoded to zero bytes")
	}
	if got, err := DecodeRowsStream(empty); err != nil || len(got) != 0 {
		t.Fatalf("empty stream decoded to %v, %v", got, err)
	}
}

func int64Bytes(v []int64) []byte {
	out := make([]byte, 8*len(v))
	for i, x := range v {
		binary.LittleEndian.PutUint64(out[8*i:], uint64(x))
	}
	return out
}

func TestStatsMove(t *testing.T) {
	before := ReadStats()
	roundTrip(t, []rel.Tuple{{1, 1}, {1, 1}, {1, 2}})
	after := ReadStats()
	if after.BatchesEncoded <= before.BatchesEncoded || after.BatchesDecoded <= before.BatchesDecoded {
		t.Fatalf("batch counters did not move: %+v -> %+v", before, after)
	}
	if after.BytesRaw-before.BytesRaw != 8*3*2 {
		t.Fatalf("raw bytes delta: %d", after.BytesRaw-before.BytesRaw)
	}
}

func BenchmarkEncodeTuples(b *testing.B) {
	rows := make([]rel.Tuple, 1024)
	for i := range rows {
		rows[i] = rel.Tuple{int64(i), int64(i % 16), 123456}
	}
	var e Encoder
	var buf []byte
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		if buf, err = e.AppendTuples(buf[:0], rows); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(8 * 1024 * 3)
}

// BenchmarkDecodeTuples measures decode ns/tuple — the receiver-side cost
// the EXPERIMENTS.md study reports.
func BenchmarkDecodeTuples(b *testing.B) {
	rows := make([]rel.Tuple, 1024)
	for i := range rows {
		rows[i] = rel.Tuple{int64(i), int64(i % 16), 123456}
	}
	var e Encoder
	data, err := e.AppendTuples(nil, rows)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		batch, err := Decode(data)
		if err != nil {
			b.Fatal(err)
		}
		if ts := batch.Tuples(); len(ts) != 1024 {
			b.Fatal("short decode")
		}
	}
	b.SetBytes(8 * 1024 * 3)
}
