package colbatch

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"testing"

	"parajoin/internal/rel"
)

// FuzzDecodeBatch fuzzes the batch decoder two ways. First it feeds the raw
// input to Decode, which mostly exercises the header validation (a random
// mutation rarely survives the CRC). Then it strips any recognizable header
// and re-wraps the remainder as a payload under a freshly computed valid
// header, so the column decoders — varint bounds, dictionary indexes,
// encoding bytes — see the mutated bytes directly. Anything that decodes must
// re-encode and decode to the same rows.
func FuzzDecodeBatch(f *testing.F) {
	var e Encoder
	seed := func(rows []rel.Tuple) {
		data, err := e.AppendTuples(nil, rows)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	seed(nil)
	seed([]rel.Tuple{{0}})
	seed([]rel.Tuple{{1, -1}, {1, -1}, {1, -1}})
	seed([]rel.Tuple{{5, 1 << 40}, {5, -(1 << 40)}, {6, 0}})
	dict := make([]rel.Tuple, 64)
	for i := range dict {
		dict[i] = rel.Tuple{int64(i % 3), int64(i), 42}
	}
	seed(dict)
	f.Add([]byte(Magic))
	f.Add(bytes.Repeat([]byte{0xff}, 64))

	f.Fuzz(func(t *testing.T, data []byte) {
		if b, err := Decode(data); err == nil {
			checkStable(t, b)
		}
		// Re-wrap: treat the bytes after the header (or the whole input) as a
		// payload and give it a consistent header so decodeColumn runs.
		payload := data
		if len(payload) >= HeaderSize {
			payload = payload[HeaderSize:]
		}
		if len(payload) > MaxPayload {
			return
		}
		for _, shape := range [][2]uint32{{0, 0}, {1, 1}, {3, 2}, {1 << 10, 4}} {
			hdr := make([]byte, HeaderSize, HeaderSize+len(payload))
			copy(hdr, Magic)
			hdr[4] = Version
			binary.LittleEndian.PutUint16(hdr[6:], uint16(shape[1]))
			binary.LittleEndian.PutUint32(hdr[8:], shape[0])
			binary.LittleEndian.PutUint32(hdr[12:], uint32(len(payload)))
			binary.LittleEndian.PutUint32(hdr[16:], crc32.ChecksumIEEE(payload))
			if b, err := Decode(append(hdr, payload...)); err == nil {
				checkStable(t, b)
			}
		}
	})
}

// checkStable re-encodes an accepted batch and verifies the round trip is
// value-identical.
func checkStable(t *testing.T, b *Batch) {
	t.Helper()
	rows := b.Tuples()
	var e Encoder
	data, err := e.AppendTuples(nil, rows)
	if err != nil {
		t.Fatalf("re-encode of accepted batch failed: %v", err)
	}
	again, err := Decode(data)
	if err != nil {
		t.Fatalf("re-decode failed: %v", err)
	}
	if again.Rows() != b.Rows() || again.Cols() != b.Cols() {
		t.Fatalf("shape drift: %dx%d -> %dx%d", b.Rows(), b.Cols(), again.Rows(), again.Cols())
	}
	for i, want := range rows {
		if !again.Tuples()[i].Equal(want) {
			t.Fatalf("row %d drift: %v -> %v", i, want, again.Tuples()[i])
		}
	}
}
