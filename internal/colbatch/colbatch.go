package colbatch

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"parajoin/internal/rel"
)

// Format constants. The header is validated in full before any
// payload-proportional allocation happens, and the checksum before any
// column is decoded.
const (
	// Magic opens every batch.
	Magic = "PJCB"
	// Version is the format revision this package reads and writes.
	Version = 1
	// HeaderSize is the fixed batch header length in bytes.
	HeaderSize = 20
	// MaxRows caps the rows of a single batch. Larger row sets travel as a
	// stream of batches (AppendRowsStream), which bounds how much a decoder
	// allocates before each chunk's checksum has been verified.
	MaxRows = 1 << 20
	// MaxCols caps a batch's column count.
	MaxCols = 1 << 14
	// MaxPayload caps a batch's payload length.
	MaxPayload = 1 << 30
	// maxDict is the largest per-column dictionary the encoder builds; a
	// column with more distinct values falls back to raw varints.
	maxDict = 4096
)

// Column encodings.
const (
	encConst byte = 0 // one varint, repeated for every row
	encRaw   byte = 1 // rows zigzag varints in row order
	encDict  byte = 2 // uvarint count, dictionary varints, row indexes
)

// zigzagLen is the encoded length of v as a zigzag varint.
func zigzagLen(v int64) int {
	u := uint64(v<<1) ^ uint64(v>>63)
	n := 1
	for u >= 0x80 {
		u >>= 7
		n++
	}
	return n
}

func uvarintLen(u uint64) int {
	n := 1
	for u >= 0x80 {
		u >>= 7
		n++
	}
	return n
}

// Encoder turns row batches into encoded columnar batches. The zero value
// is ready to use; an Encoder amortizes its transpose and dictionary
// scratch across calls and is not safe for concurrent use.
type Encoder struct {
	cols     [][]int64
	colArena []int64
	dict     map[int64]uint32
	dictVals []int64
	idx      []uint32
}

// AppendTuples appends the encoded form of rows (all of one arity) to dst
// and returns the extended slice.
func (e *Encoder) AppendTuples(dst []byte, rows []rel.Tuple) ([]byte, error) {
	ncols := 0
	if len(rows) > 0 {
		ncols = len(rows[0])
	}
	if err := e.transpose(len(rows), ncols, func(i int) []int64 { return rows[i] }); err != nil {
		return nil, err
	}
	return e.appendBatch(dst, len(rows), ncols)
}

// AppendRows is AppendTuples for plain [][]int64 rows (the wire layer's row
// representation).
func (e *Encoder) AppendRows(dst []byte, rows [][]int64) ([]byte, error) {
	ncols := 0
	if len(rows) > 0 {
		ncols = len(rows[0])
	}
	if err := e.transpose(len(rows), ncols, func(i int) []int64 { return rows[i] }); err != nil {
		return nil, err
	}
	return e.appendBatch(dst, len(rows), ncols)
}

// transpose fills e.cols with the batch's values column-major.
func (e *Encoder) transpose(nrows, ncols int, row func(int) []int64) error {
	if nrows > MaxRows {
		return fmt.Errorf("colbatch: batch of %d rows exceeds limit %d", nrows, MaxRows)
	}
	if ncols > MaxCols {
		return fmt.Errorf("colbatch: batch of %d columns exceeds limit %d", ncols, MaxCols)
	}
	if cap(e.colArena) < nrows*ncols {
		e.colArena = make([]int64, nrows*ncols)
	}
	if cap(e.cols) < ncols {
		e.cols = make([][]int64, ncols)
	}
	e.cols = e.cols[:ncols]
	for j := range e.cols {
		e.cols[j] = e.colArena[j*nrows : (j+1)*nrows]
	}
	for i := 0; i < nrows; i++ {
		r := row(i)
		if len(r) != ncols {
			return fmt.Errorf("colbatch: row %d has arity %d, batch has %d", i, len(r), ncols)
		}
		for j, v := range r {
			e.cols[j][i] = v
		}
	}
	return nil
}

// appendBatch encodes e.cols (nrows values each) after dst.
func (e *Encoder) appendBatch(dst []byte, nrows, ncols int) ([]byte, error) {
	start := len(dst)
	dst = append(dst, make([]byte, HeaderSize)...)
	payloadStart := len(dst)
	for j := 0; j < ncols; j++ {
		dst = e.appendColumn(dst, e.cols[j])
	}
	payload := dst[payloadStart:]
	if len(payload) > MaxPayload {
		return nil, fmt.Errorf("colbatch: payload of %d bytes exceeds limit %d", len(payload), MaxPayload)
	}
	hdr := dst[start:payloadStart]
	copy(hdr, Magic)
	hdr[4] = Version
	hdr[5] = 0
	binary.LittleEndian.PutUint16(hdr[6:], uint16(ncols))
	binary.LittleEndian.PutUint32(hdr[8:], uint32(nrows))
	binary.LittleEndian.PutUint32(hdr[12:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[16:], crc32.ChecksumIEEE(payload))
	counters.batchesEncoded.Add(1)
	counters.bytesEncoded.Add(int64(len(dst) - start))
	counters.bytesRaw.Add(8 * int64(nrows) * int64(ncols))
	return dst, nil
}

// appendColumn picks the smallest of the three encodings for col and
// appends it.
func (e *Encoder) appendColumn(dst []byte, col []int64) []byte {
	if len(col) == 0 {
		return append(dst, encRaw)
	}
	// One scan builds the dictionary (first-appearance order, abandoned
	// past maxDict or half the rows — beyond that raw can't lose by much)
	// and the exact encoded sizes of every alternative.
	if e.dict == nil {
		e.dict = make(map[int64]uint32, maxDict)
	}
	clear(e.dict)
	e.dictVals = e.dictVals[:0]
	if cap(e.idx) < len(col) {
		e.idx = make([]uint32, len(col))
	}
	e.idx = e.idx[:len(col)]
	dictLimit := maxDict
	if half := len(col) / 2; half < dictLimit {
		dictLimit = half + 1
	}
	rawSize, idxSize, dictOK := 0, 0, true
	for i, v := range col {
		rawSize += zigzagLen(v)
		if !dictOK {
			continue
		}
		k, ok := e.dict[v]
		if !ok {
			if len(e.dictVals) >= dictLimit {
				dictOK = false
				continue
			}
			k = uint32(len(e.dictVals))
			e.dict[v] = k
			e.dictVals = append(e.dictVals, v)
		}
		e.idx[i] = k
		idxSize += uvarintLen(uint64(k))
	}
	if dictOK && len(e.dictVals) == 1 {
		counters.valuesConst.Add(int64(len(col)))
		dst = append(dst, encConst)
		return binary.AppendVarint(dst, col[0])
	}
	if dictOK {
		dictSize := uvarintLen(uint64(len(e.dictVals))) + idxSize
		for _, v := range e.dictVals {
			dictSize += zigzagLen(v)
		}
		if dictSize < rawSize {
			counters.valuesDict.Add(int64(len(col)))
			dst = append(dst, encDict)
			dst = binary.AppendUvarint(dst, uint64(len(e.dictVals)))
			for _, v := range e.dictVals {
				dst = binary.AppendVarint(dst, v)
			}
			for _, k := range e.idx {
				dst = binary.AppendUvarint(dst, uint64(k))
			}
			return dst
		}
	}
	counters.valuesRaw.Add(int64(len(col)))
	dst = append(dst, encRaw)
	for _, v := range col {
		dst = binary.AppendVarint(dst, v)
	}
	return dst
}

// Batch is one decoded columnar batch: per-column int64 vectors over a
// shared arena.
type Batch struct {
	cols [][]int64
	rows int
}

// Rows returns the batch's row count.
func (b *Batch) Rows() int { return b.rows }

// Cols returns the batch's column count.
func (b *Batch) Cols() int { return len(b.cols) }

// Col returns column j's values in row order. The slice aliases the
// batch's arena; callers must not mutate it.
func (b *Batch) Col(j int) []int64 { return b.cols[j] }

// Tuples materializes the batch row-major as a tuple slice. All tuples
// share one backing arena (two allocations total, not one per row); their
// capacities are clamped so appending to one can never bleed into its
// neighbor. Callers own the result.
func (b *Batch) Tuples() []rel.Tuple {
	ncols := len(b.cols)
	out := make([]rel.Tuple, b.rows)
	arena := make([]int64, b.rows*ncols)
	for i := range out {
		t := arena[i*ncols : (i+1)*ncols : (i+1)*ncols]
		for j, col := range b.cols {
			t[j] = col[i]
		}
		out[i] = t
	}
	return out
}

// AppendRows appends the batch's rows, materialized as []int64 slices over
// a shared arena, to dst.
func (b *Batch) AppendRows(dst [][]int64) [][]int64 {
	ncols := len(b.cols)
	arena := make([]int64, b.rows*ncols)
	for i := 0; i < b.rows; i++ {
		r := arena[i*ncols : (i+1)*ncols : (i+1)*ncols]
		for j, col := range b.cols {
			r[j] = col[i]
		}
		dst = append(dst, r)
	}
	return dst
}

// Decode decodes data, which must hold exactly one batch.
func Decode(data []byte) (*Batch, error) {
	b, n, err := DecodeNext(data)
	if err != nil {
		return nil, err
	}
	if n != len(data) {
		return nil, fmt.Errorf("colbatch: %d trailing bytes after batch", len(data)-n)
	}
	return b, nil
}

// DecodeNext decodes the batch at the head of data and returns it with the
// number of bytes it occupied — the stream-reading form. Every limit and
// the checksum are verified before the value arena is allocated.
func DecodeNext(data []byte) (*Batch, int, error) {
	if len(data) < HeaderSize {
		return nil, 0, fmt.Errorf("colbatch: truncated header (%d of %d bytes)", len(data), HeaderSize)
	}
	if string(data[:4]) != Magic {
		return nil, 0, fmt.Errorf("colbatch: bad magic %q", data[:4])
	}
	if data[4] != Version {
		return nil, 0, fmt.Errorf("colbatch: unsupported version %d (want %d)", data[4], Version)
	}
	if data[5] != 0 {
		return nil, 0, fmt.Errorf("colbatch: unknown flags %#x", data[5])
	}
	ncols := int(binary.LittleEndian.Uint16(data[6:]))
	nrows := int(binary.LittleEndian.Uint32(data[8:]))
	plen := int(binary.LittleEndian.Uint32(data[12:]))
	sum := binary.LittleEndian.Uint32(data[16:])
	if ncols > MaxCols {
		return nil, 0, fmt.Errorf("colbatch: %d columns exceeds limit %d", ncols, MaxCols)
	}
	if nrows > MaxRows {
		return nil, 0, fmt.Errorf("colbatch: %d rows exceeds limit %d", nrows, MaxRows)
	}
	if plen > MaxPayload {
		return nil, 0, fmt.Errorf("colbatch: payload of %d bytes exceeds limit %d", plen, MaxPayload)
	}
	if len(data) < HeaderSize+plen {
		return nil, 0, fmt.Errorf("colbatch: truncated payload (%d of %d bytes)", len(data)-HeaderSize, plen)
	}
	payload := data[HeaderSize : HeaderSize+plen]
	if got := crc32.ChecksumIEEE(payload); got != sum {
		return nil, 0, fmt.Errorf("colbatch: checksum mismatch: header %#x, payload %#x", sum, got)
	}
	b := &Batch{rows: nrows, cols: make([][]int64, ncols)}
	arena := make([]int64, nrows*ncols)
	for j := 0; j < ncols; j++ {
		col := arena[j*nrows : (j+1)*nrows]
		n, err := decodeColumn(col, payload)
		if err != nil {
			return nil, 0, fmt.Errorf("colbatch: column %d: %w", j, err)
		}
		payload = payload[n:]
		b.cols[j] = col
	}
	if len(payload) != 0 {
		return nil, 0, fmt.Errorf("colbatch: %d undecoded payload bytes", len(payload))
	}
	counters.batchesDecoded.Add(1)
	counters.bytesDecoded.Add(int64(HeaderSize + plen))
	return b, HeaderSize + plen, nil
}

// decodeColumn decodes one column block from the head of payload into col
// and returns the bytes consumed.
func decodeColumn(col []int64, payload []byte) (int, error) {
	if len(payload) == 0 {
		return 0, fmt.Errorf("missing encoding byte")
	}
	enc := payload[0]
	p := payload[1:]
	used := 1
	readVarint := func() (int64, error) {
		v, n := binary.Varint(p)
		if n <= 0 {
			return 0, fmt.Errorf("bad varint at payload offset %d", used)
		}
		p = p[n:]
		used += n
		return v, nil
	}
	readUvarint := func() (uint64, error) {
		v, n := binary.Uvarint(p)
		if n <= 0 {
			return 0, fmt.Errorf("bad uvarint at payload offset %d", used)
		}
		p = p[n:]
		used += n
		return v, nil
	}
	switch enc {
	case encConst:
		if len(col) == 0 {
			return 0, fmt.Errorf("const encoding for empty column")
		}
		v, err := readVarint()
		if err != nil {
			return 0, err
		}
		for i := range col {
			col[i] = v
		}
	case encRaw:
		for i := range col {
			v, err := readVarint()
			if err != nil {
				return 0, err
			}
			col[i] = v
		}
	case encDict:
		d, err := readUvarint()
		if err != nil {
			return 0, err
		}
		if d == 0 || d > uint64(len(col)) || d > maxDict {
			return 0, fmt.Errorf("dictionary of %d entries for %d rows", d, len(col))
		}
		dict := make([]int64, d)
		for i := range dict {
			if dict[i], err = readVarint(); err != nil {
				return 0, err
			}
		}
		for i := range col {
			k, err := readUvarint()
			if err != nil {
				return 0, err
			}
			if k >= d {
				return 0, fmt.Errorf("dictionary index %d out of %d entries", k, d)
			}
			col[i] = dict[k]
		}
	default:
		return 0, fmt.Errorf("unknown column encoding %d", enc)
	}
	return used, nil
}

// streamChunkRows is the per-batch row cap AppendRowsStream chunks at:
// well under MaxRows, so stream readers allocate modest arenas per chunk.
const streamChunkRows = 1 << 16

// AppendRowsStream encodes rows as one or more concatenated batches of at
// most streamChunkRows rows each and appends them to dst. An empty row set
// encodes as a single empty batch, so a stream is never zero bytes.
func AppendRowsStream(dst []byte, rows [][]int64) ([]byte, error) {
	var e Encoder
	if len(rows) == 0 {
		return e.AppendRows(dst, nil)
	}
	var err error
	for len(rows) > 0 {
		n := len(rows)
		if n > streamChunkRows {
			n = streamChunkRows
		}
		if dst, err = e.AppendRows(dst, rows[:n]); err != nil {
			return nil, err
		}
		rows = rows[n:]
	}
	return dst, nil
}

// DecodeRowsStream decodes a concatenation of batches back into rows.
func DecodeRowsStream(data []byte) ([][]int64, error) {
	var rows [][]int64
	for len(data) > 0 {
		b, n, err := DecodeNext(data)
		if err != nil {
			return nil, err
		}
		data = data[n:]
		rows = b.AppendRows(rows)
	}
	return rows, nil
}
