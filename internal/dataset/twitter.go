// Package dataset generates the synthetic stand-ins for the paper's two
// datasets: a power-law directed graph for the Twitter follower network and
// a movie/award knowledge base for Freebase. Both are deterministic under a
// seed and sized by a scale knob, so tests run on small instances and
// benchmarks can approach paper scale.
package dataset

import (
	"math/rand"

	"parajoin/internal/rel"
)

// GraphConfig sizes the synthetic social graph.
type GraphConfig struct {
	// Edges is the number of directed follow edges before deduplication
	// (the paper's subset has 1,114,289).
	Edges int
	// Nodes is the number of accounts.
	Nodes int
	// Skew is the Zipf exponent s (> 1) of the in-degree distribution;
	// larger means heavier hubs. The paper attributes the regular shuffle's
	// skew to exactly this power-law (citing Faloutsos et al.).
	Skew float64
	// Seed makes generation deterministic.
	Seed int64
}

// DefaultTwitter is a laptop-scale default: big enough for the triangle and
// clique queries to have large intermediate results, small enough for the
// full six-configuration sweep to run in seconds.
func DefaultTwitter() GraphConfig {
	return GraphConfig{Edges: 30000, Nodes: 1500, Skew: 1.3, Seed: 42}
}

// Twitter generates the follower graph: schema (src, dst) where src follows
// dst. In-degrees follow a Zipf distribution (celebrity hubs), out-degrees
// a milder one. Self-loops are dropped and duplicate edges removed.
func Twitter(cfg GraphConfig) *rel.Relation {
	if cfg.Edges <= 0 || cfg.Nodes <= 1 {
		return rel.New("Twitter", "src", "dst")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	skew := cfg.Skew
	if skew <= 1 {
		skew = 1.3
	}
	in := rand.NewZipf(rng, skew, 1, uint64(cfg.Nodes-1))
	out := rand.NewZipf(rng, skew+0.4, 1, uint64(cfg.Nodes-1))

	r := rel.New("Twitter", "src", "dst")
	seen := make(map[[2]int64]bool, cfg.Edges)
	// Heavy skew concentrates samples on few pairs; cap the attempts so a
	// saturated configuration terminates with fewer edges instead of
	// spinning.
	for attempts := 0; len(r.Tuples) < cfg.Edges && attempts < 40*cfg.Edges; attempts++ {
		// Mix the Zipf ranks through a permutation so hub ids are spread
		// over the id space rather than clustered at zero.
		src := mixID(int64(out.Uint64()), int64(cfg.Nodes), 0x9e37)
		dst := mixID(int64(in.Uint64()), int64(cfg.Nodes), 0x85eb)
		if src == dst || seen[[2]int64{src, dst}] {
			continue
		}
		seen[[2]int64{src, dst}] = true
		r.AppendRow(src, dst)
	}
	return r.Sort()
}

// mixID maps a Zipf rank to a pseudo-random but fixed node id.
func mixID(rank, n, salt int64) int64 {
	x := uint64(rank)*0x9e3779b97f4a7c15 + uint64(salt)
	x ^= x >> 29
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 32
	return int64(x % uint64(n))
}
