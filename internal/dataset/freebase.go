package dataset

import (
	"fmt"
	"math/rand"

	"parajoin/internal/rel"
)

// Names of the constants the paper's Freebase queries select on.
const (
	NameJoePesci      = "Joe Pesci"
	NameRobertDeNiro  = "Robert De Niro"
	NameAcademyAwards = "The Academy Awards"
)

// KBConfig sizes the synthetic knowledge base. The defaults keep the
// paper's ratios between relations (ActorPerform ≈ PerformFilm, DirectorFilm
// ≈ 0.17×PerformFilm, HonorActor slightly above HonorAward) at laptop
// scale.
type KBConfig struct {
	Actors       int
	Films        int
	Performances int
	Directors    int
	Honors       int
	Awards       int
	Seed         int64
}

// DefaultKB is the laptop-scale default.
func DefaultKB() KBConfig {
	return KBConfig{
		Actors:       2500,
		Films:        1600,
		Performances: 8000,
		Directors:    250,
		Honors:       1000,
		Awards:       20,
		Seed:         7,
	}
}

// KB is the generated knowledge base: the relations of Table 1 and the
// appendix (Tables 8), a shared string dictionary, and the entity ids the
// benchmark queries select on.
type KB struct {
	Dict *rel.Dict

	// ObjectName maps every entity to a name code: (object_id, name).
	ObjectName *rel.Relation
	// ActorPerform links actors to performances: (actor_id, perform_id).
	ActorPerform *rel.Relation
	// PerformFilm links performances to films: (perform_id, film_id).
	PerformFilm *rel.Relation
	// DirectorFilm links directors to films: (director_id, film_id).
	DirectorFilm *rel.Relation
	// HonorAward links honor events to awards: (honor_id, award_id).
	HonorAward *rel.Relation
	// HonorActor links honor events to honorees: (honor_id, actor_id).
	HonorActor *rel.Relation
	// HonorYear gives each honor's year: (honor_id, year).
	HonorYear *rel.Relation

	// JoePesci, RobertDeNiro and AcademyAwards are the entity ids behind
	// the paper's selection constants.
	JoePesci      int64
	RobertDeNiro  int64
	AcademyAwards int64
}

// Relations lists every base relation of the knowledge base.
func (kb *KB) Relations() []*rel.Relation {
	return []*rel.Relation{
		kb.ObjectName, kb.ActorPerform, kb.PerformFilm, kb.DirectorFilm,
		kb.HonorAward, kb.HonorActor, kb.HonorYear,
	}
}

// Entity id spaces are disjoint so a join can never accidentally match an
// actor to a film id.
const (
	actorBase    = 1_000_000
	filmBase     = 2_000_000
	performBase  = 3_000_000
	directorBase = 4_000_000
	honorBase    = 5_000_000
	awardBase    = 6_000_000
)

// NewKB generates the knowledge base. Famous actors appear in many films
// (Zipf-distributed filmographies); the two actors behind the paper's Q3
// constants are guaranteed to co-star in several films so the query has a
// non-trivial answer.
func NewKB(cfg KBConfig) *KB {
	rng := rand.New(rand.NewSource(cfg.Seed))
	kb := &KB{
		Dict:         rel.NewDict(),
		ObjectName:   rel.New("ObjectName", "object_id", "name"),
		ActorPerform: rel.New("ActorPerform", "actor_id", "perform_id"),
		PerformFilm:  rel.New("PerformFilm", "perform_id", "film_id"),
		DirectorFilm: rel.New("DirectorFilm", "director_id", "film_id"),
		HonorAward:   rel.New("HonorAward", "honor_id", "award_id"),
		HonorActor:   rel.New("HonorActor", "honor_id", "actor_id"),
		HonorYear:    rel.New("HonorYear", "honor_id", "year"),
	}

	// Names. Actors 0 and 1 are the famous pair.
	kb.JoePesci = actorBase
	kb.RobertDeNiro = actorBase + 1
	kb.AcademyAwards = awardBase
	kb.ObjectName.AppendRow(kb.JoePesci, kb.Dict.Code(NameJoePesci))
	kb.ObjectName.AppendRow(kb.RobertDeNiro, kb.Dict.Code(NameRobertDeNiro))
	for i := 2; i < cfg.Actors; i++ {
		kb.ObjectName.AppendRow(actorBase+int64(i), kb.Dict.Code(fmt.Sprintf("Actor %d", i)))
	}
	for i := 0; i < cfg.Films; i++ {
		kb.ObjectName.AppendRow(filmBase+int64(i), kb.Dict.Code(fmt.Sprintf("Film %d", i)))
	}
	for i := 0; i < cfg.Directors; i++ {
		kb.ObjectName.AppendRow(directorBase+int64(i), kb.Dict.Code(fmt.Sprintf("Director %d", i)))
	}
	kb.ObjectName.AppendRow(kb.AcademyAwards, kb.Dict.Code(NameAcademyAwards))
	for i := 1; i < cfg.Awards; i++ {
		kb.ObjectName.AppendRow(awardBase+int64(i), kb.Dict.Code(fmt.Sprintf("Award %d", i)))
	}

	// Performances: actor filmographies are Zipf-distributed so a few
	// actors have long careers (this is what gives Q4 and Q8 their large
	// intermediate results). Film cast assignment is uniform.
	actorZipf := rand.NewZipf(rng, 1.2, 4, uint64(cfg.Actors-1))
	perform := int64(0)
	seen := map[[2]int64]bool{} // (actor, film) pairs, to avoid duplicate castings
	for int(perform) < cfg.Performances {
		actor := actorBase + int64(actorZipf.Uint64())
		film := filmBase + rng.Int63n(int64(cfg.Films))
		if seen[[2]int64{actor, film}] {
			continue
		}
		seen[[2]int64{actor, film}] = true
		pid := performBase + perform
		kb.ActorPerform.AppendRow(actor, pid)
		kb.PerformFilm.AppendRow(pid, film)
		perform++
	}
	// Guarantee the famous pair co-stars in a few films.
	for i := 0; i < 4; i++ {
		film := filmBase + int64(i)
		for _, actor := range []int64{kb.JoePesci, kb.RobertDeNiro} {
			if seen[[2]int64{actor, film}] {
				continue
			}
			seen[[2]int64{actor, film}] = true
			pid := performBase + perform
			kb.ActorPerform.AppendRow(actor, pid)
			kb.PerformFilm.AppendRow(pid, film)
			perform++
		}
	}

	// Directors: careers are Zipf-distributed too; |DirectorFilm| ≈
	// 0.17 × |PerformFilm| comes from each film having exactly one director
	// in the paper's ratio.
	directorZipf := rand.NewZipf(rng, 1.3, 3, uint64(cfg.Directors-1))
	for i := 0; i < cfg.Films; i++ {
		d := directorBase + int64(directorZipf.Uint64())
		kb.DirectorFilm.AppendRow(d, filmBase+int64(i))
	}
	kb.DirectorFilm.Dedup()

	// Honors: a Zipf over awards (the Academy Awards dominate) and over
	// actors, years spread over 1950–2014.
	awardZipf := rand.NewZipf(rng, 1.5, 1, uint64(cfg.Awards-1))
	for i := 0; i < cfg.Honors; i++ {
		h := honorBase + int64(i)
		kb.HonorAward.AppendRow(h, awardBase+int64(awardZipf.Uint64()))
		kb.HonorActor.AppendRow(h, actorBase+int64(actorZipf.Uint64()))
		kb.HonorYear.AppendRow(h, 1950+rng.Int63n(65))
	}

	return kb
}
