package dataset

import (
	"testing"
)

func TestTwitterDeterministic(t *testing.T) {
	cfg := GraphConfig{Edges: 5000, Nodes: 1000, Skew: 1.3, Seed: 1}
	a := Twitter(cfg)
	b := Twitter(cfg)
	if !a.Equal(b) {
		t.Fatal("same seed must generate the same graph")
	}
	cfg.Seed = 2
	c := Twitter(cfg)
	if a.Equal(c) {
		t.Fatal("different seeds should generate different graphs")
	}
}

func TestTwitterShape(t *testing.T) {
	cfg := GraphConfig{Edges: 8000, Nodes: 1500, Skew: 1.3, Seed: 3}
	g := Twitter(cfg)
	if g.Cardinality() != cfg.Edges {
		t.Fatalf("generated %d edges, want %d", g.Cardinality(), cfg.Edges)
	}
	// No self loops, ids in range.
	inDeg := map[int64]int{}
	for _, e := range g.Tuples {
		if e[0] == e[1] {
			t.Fatalf("self loop %v", e)
		}
		if e[0] < 0 || e[0] >= int64(cfg.Nodes) || e[1] < 0 || e[1] >= int64(cfg.Nodes) {
			t.Fatalf("node id out of range in %v", e)
		}
		inDeg[e[1]]++
	}
	// Power law: the hottest node's in-degree must far exceed the average.
	max := 0
	for _, d := range inDeg {
		if d > max {
			max = d
		}
	}
	avg := float64(cfg.Edges) / float64(len(inDeg))
	if float64(max) < 5*avg {
		t.Fatalf("max in-degree %d vs avg %.1f: degree distribution is not heavy-tailed", max, avg)
	}
}

func TestTwitterDegenerateConfigs(t *testing.T) {
	if g := Twitter(GraphConfig{}); g.Cardinality() != 0 {
		t.Fatal("empty config should generate an empty graph")
	}
	if g := Twitter(GraphConfig{Edges: 10, Nodes: 2, Seed: 1}); g.Cardinality() == 0 {
		t.Fatal("two-node graph should still have edges")
	}
}

func TestKBShape(t *testing.T) {
	cfg := KBConfig{Actors: 200, Films: 150, Performances: 800, Directors: 30, Honors: 100, Awards: 5, Seed: 1}
	kb := NewKB(cfg)

	if kb.ActorPerform.Cardinality() != kb.PerformFilm.Cardinality() {
		t.Fatalf("|AP| = %d must equal |PF| = %d",
			kb.ActorPerform.Cardinality(), kb.PerformFilm.Cardinality())
	}
	if kb.ActorPerform.Cardinality() < cfg.Performances {
		t.Fatalf("|AP| = %d below configured %d", kb.ActorPerform.Cardinality(), cfg.Performances)
	}
	if kb.HonorAward.Cardinality() != cfg.Honors || kb.HonorYear.Cardinality() != cfg.Honors {
		t.Fatal("honor relations must have one row per honor")
	}
	// DirectorFilm ≈ one per film.
	if df := kb.DirectorFilm.Cardinality(); df == 0 || df > cfg.Films {
		t.Fatalf("|DF| = %d for %d films", df, cfg.Films)
	}

	// The selection constants resolve.
	for _, name := range []string{NameJoePesci, NameRobertDeNiro, NameAcademyAwards} {
		if _, ok := kb.Dict.Lookup(name); !ok {
			t.Fatalf("dictionary misses %q", name)
		}
	}

	// The famous pair must co-star somewhere: films of Pesci ∩ films of De Niro ≠ ∅.
	films := func(actor int64) map[int64]bool {
		perf := map[int64]bool{}
		for _, tp := range kb.ActorPerform.Tuples {
			if tp[0] == actor {
				perf[tp[1]] = true
			}
		}
		fs := map[int64]bool{}
		for _, tp := range kb.PerformFilm.Tuples {
			if perf[tp[0]] {
				fs[tp[1]] = true
			}
		}
		return fs
	}
	pesci := films(kb.JoePesci)
	shared := 0
	for f := range films(kb.RobertDeNiro) {
		if pesci[f] {
			shared++
		}
	}
	if shared == 0 {
		t.Fatal("the famous pair must co-star in at least one film (Q3 would be empty)")
	}
}

func TestKBDeterministic(t *testing.T) {
	cfg := KBConfig{Actors: 100, Films: 80, Performances: 300, Directors: 20, Honors: 50, Awards: 4, Seed: 9}
	a, b := NewKB(cfg), NewKB(cfg)
	if !a.ActorPerform.Equal(b.ActorPerform) || !a.HonorYear.Equal(b.HonorYear) {
		t.Fatal("same seed must generate the same knowledge base")
	}
}

func TestEntityIDSpacesDisjoint(t *testing.T) {
	kb := NewKB(KBConfig{Actors: 50, Films: 40, Performances: 150, Directors: 10, Honors: 30, Awards: 3, Seed: 2})
	for _, tp := range kb.ActorPerform.Tuples {
		if tp[0] < actorBase || tp[0] >= filmBase {
			t.Fatalf("actor id %d outside actor space", tp[0])
		}
		if tp[1] < performBase || tp[1] >= directorBase {
			t.Fatalf("perform id %d outside perform space", tp[1])
		}
	}
	for _, tp := range kb.PerformFilm.Tuples {
		if tp[1] < filmBase || tp[1] >= performBase {
			t.Fatalf("film id %d outside film space", tp[1])
		}
	}
}
