package experiments

import (
	"fmt"
	"io"
	"time"

	"parajoin/internal/planner"
)

// SkewStudy evaluates the heavy-hitter-aware regular shuffle (the technique
// the paper's footnote 2 mentions) against the plain regular shuffle: same
// left-deep hash-join plan, but heavy join keys are split round-robin on
// one side and broadcast on the other. The comparison shows how much of the
// regular shuffle's skew problem special-casing heavy hitters removes — and
// what it costs in extra replication.
type SkewStudy struct {
	Rows []SkewStudyRow
}

// SkewStudyRow compares the two shuffles on one query.
type SkewStudyRow struct {
	Query         string
	PlainWall     time.Duration
	PlainShuffled int64
	PlainSkew     float64
	SkewAwareWall time.Duration
	SkewAwareShuf int64
	SkewAwareSkew float64
	ResultsAgree  bool
}

// SkewStudy runs the comparison on the given queries (default Q1, the
// query whose regular-shuffle skew the paper dissects in Table 2).
func (s *Suite) SkewStudy(queryNames ...string) (*SkewStudy, error) {
	if len(queryNames) == 0 {
		queryNames = []string{"Q1"}
	}
	out := &SkewStudy{}
	for _, name := range queryNames {
		plain, err := s.RunConfig(name, planner.RSHJ, s.Workers)
		if err != nil {
			return nil, err
		}
		aware, err := s.RunConfig(name, planner.RSHJSkew, s.Workers)
		if err != nil {
			return nil, err
		}
		row := SkewStudyRow{
			Query:         name,
			PlainWall:     plain.Wall,
			PlainShuffled: plain.Shuffled,
			SkewAwareWall: aware.Wall,
			SkewAwareShuf: aware.Shuffled,
			ResultsAgree:  plain.Failed == aware.Failed && plain.Results == aware.Results,
		}
		if plain.Report != nil {
			row.PlainSkew = plain.Report.MaxConsumerSkew()
		}
		if aware.Report != nil {
			row.SkewAwareSkew = aware.Report.MaxConsumerSkew()
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// Render prints the comparison.
func (t *SkewStudy) Render(w io.Writer) {
	fmt.Fprintln(w, "Heavy-hitter-aware regular shuffle vs plain (footnote 2 extension)")
	fmt.Fprintf(w, "%-4s %12s %14s %10s %14s %14s %10s %8s\n",
		"q", "plain wall", "plain tuples", "plain skw", "aware wall", "aware tuples", "aware skw", "agree")
	for _, r := range t.Rows {
		fmt.Fprintf(w, "%-4s %12v %14d %10.2f %14v %14d %10.2f %8v\n",
			r.Query, r.PlainWall.Round(time.Microsecond), r.PlainShuffled, r.PlainSkew,
			r.SkewAwareWall.Round(time.Microsecond), r.SkewAwareShuf, r.SkewAwareSkew, r.ResultsAgree)
	}
}
