package experiments

import (
	"fmt"
	"io"
	"time"

	"parajoin/internal/engine"
	"parajoin/internal/planner"
	"parajoin/internal/rel"
)

// RelationSizes reproduces the relation-cardinality tables: Table 1 (the
// Freebase relations behind Q3/Q4) and Table 8 (the Q7 relations after
// selection pushdown).
type RelationSizes struct {
	Title string
	Rows  []RelationSizeRow
}

// RelationSizeRow is one relation's schema and cardinality.
type RelationSizeRow struct {
	Name   string
	Schema rel.Schema
	Tuples int
}

// Table1 reports the knowledge-base relations used by Q3 and Q4.
func (s *Suite) Table1() *RelationSizes {
	w := s.Workload()
	out := &RelationSizes{Title: "Table 1: Relations from the knowledge base"}
	for _, name := range []string{"ObjectName", "ActorPerform", "PerformFilm", "DirectorFilm"} {
		r := w.Relations[name]
		out.Rows = append(out.Rows, RelationSizeRow{Name: name, Schema: r.Schema, Tuples: r.Cardinality()})
	}
	return out
}

// Table8 reports the Q7 relations with the paper's selections pushed down:
// σ_name(ObjectName), HonorAward, HonorActor, σ_year(HonorYear).
func (s *Suite) Table8() *RelationSizes {
	w := s.Workload()
	kb := w.KB
	out := &RelationSizes{Title: "Table 8: Relations joined in Q7 (after selection pushdown)"}

	code, _ := kb.Dict.Lookup("The Academy Awards")
	selName := kb.ObjectName.Select("σ_name(ObjectName)", func(t rel.Tuple) bool { return t[1] == code })
	selYear := kb.HonorYear.Select("σ_year(HonorYear)", func(t rel.Tuple) bool { return t[1] >= 1990 && t[1] < 2000 })
	for _, r := range []*rel.Relation{selName, kb.HonorAward, kb.HonorActor, selYear} {
		out.Rows = append(out.Rows, RelationSizeRow{Name: r.Name, Schema: r.Schema, Tuples: r.Cardinality()})
	}
	return out
}

// Render prints the table.
func (t *RelationSizes) Render(w io.Writer) {
	fmt.Fprintln(w, t.Title)
	fmt.Fprintf(w, "%-22s %-28s %12s\n", "relation", "schema", "tuples")
	for _, r := range t.Rows {
		fmt.Fprintf(w, "%-22s %-28v %12d\n", r.Name, []string(r.Schema), r.Tuples)
	}
}

// LoadBalance reproduces the per-shuffle load-balance tables for Q1
// (Tables 2, 3 and 4): tuples sent plus producer and consumer skew for
// every exchange of one configuration.
type LoadBalance struct {
	Title  string
	Config planner.PlanConfig
	Rows   []engine.ExchangeReport
	Total  int64
}

// LoadBalanceTable runs one configuration of a query and extracts its
// exchange report. Table 2 is ("Q1", RSHJ), Table 3 ("Q1", HCTJ), Table 4
// ("Q1", BRHJ).
func (s *Suite) LoadBalanceTable(queryName string, cfg planner.PlanConfig) (*LoadBalance, error) {
	sc, err := s.SixConfigs(queryName)
	if err != nil {
		return nil, err
	}
	out := sc.Row(cfg)
	lb := &LoadBalance{
		Title:  fmt.Sprintf("Load balance of %s shuffles in %s", cfg, queryName),
		Config: cfg,
	}
	if out.Report != nil {
		lb.Rows = out.Report.Exchanges
		lb.Total = out.Report.TotalTuplesShuffled()
	}
	return lb, nil
}

// Table2 is Q1 under regular shuffles, Table3 under HyperCube shuffles,
// Table4 under broadcast.
func (s *Suite) Table2() (*LoadBalance, error) { return s.LoadBalanceTable("Q1", planner.RSHJ) }

// Table3 reports Q1's HyperCube shuffles.
func (s *Suite) Table3() (*LoadBalance, error) { return s.LoadBalanceTable("Q1", planner.HCTJ) }

// Table4 reports Q1's broadcast shuffles.
func (s *Suite) Table4() (*LoadBalance, error) { return s.LoadBalanceTable("Q1", planner.BRHJ) }

// Render prints the table.
func (lb *LoadBalance) Render(w io.Writer) {
	fmt.Fprintln(w, lb.Title)
	fmt.Fprintf(w, "%-34s %14s %14s %14s\n", "shuffle", "tuples sent", "producer skew", "consumer skew")
	for _, r := range lb.Rows {
		fmt.Fprintf(w, "%-34s %14d %14.2f %14.2f\n", r.Name, r.TuplesSent, r.ProducerSkew, r.ConsumerSkew)
	}
	fmt.Fprintf(w, "%-34s %14d\n", "Total", lb.Total)
}

// OperatorTime reproduces Table 5: how much of the local-join phase each
// operator consumes, contrasting BR_TJ (dominated by sorting) with BR_HJ.
type OperatorTime struct {
	Query string
	Rows  []OperatorTimeRow
}

// OperatorTimeRow is one configuration's local-phase breakdown.
type OperatorTimeRow struct {
	Config planner.PlanConfig
	Phase  string
	Time   time.Duration
	// Share is the phase's fraction of the configuration's total busy time.
	Share float64
}

// Table5 measures the sort-vs-join split of the broadcast plans on Q1.
func (s *Suite) Table5() (*OperatorTime, error) {
	out := &OperatorTime{Query: "Q1"}
	sc, err := s.SixConfigs("Q1")
	if err != nil {
		return nil, err
	}
	for _, cfg := range []planner.PlanConfig{planner.BRTJ, planner.BRHJ} {
		run := sc.Row(cfg)
		if run.Failed || run.Report == nil {
			continue
		}
		var sort, join time.Duration
		for w := range run.Report.SortTime {
			sort += run.Report.SortTime[w]
			join += run.Report.JoinTime[w]
		}
		busy := run.Report.TotalBusy()
		share := func(d time.Duration) float64 {
			if busy == 0 {
				return 0
			}
			return float64(d) / float64(busy)
		}
		if cfg == planner.BRTJ {
			out.Rows = append(out.Rows,
				OperatorTimeRow{cfg, "all sorts", sort, share(sort)},
				OperatorTimeRow{cfg, "TJ(R,S,T)", join, share(join)},
			)
		} else {
			other := busy - join
			out.Rows = append(out.Rows,
				OperatorTimeRow{cfg, "hash joins", join, share(join)},
				OperatorTimeRow{cfg, "everything else", other, share(other)},
			)
		}
	}
	return out, nil
}

// Render prints the table.
func (t *OperatorTime) Render(w io.Writer) {
	fmt.Fprintf(w, "Operator time in the local join phase of %s (Table 5)\n", t.Query)
	fmt.Fprintf(w, "%-8s %-18s %14s %8s\n", "config", "phase", "cpu time", "share")
	for _, r := range t.Rows {
		fmt.Fprintf(w, "%-8s %-18s %14s %7.0f%%\n", r.Config, r.Phase, r.Time.Round(time.Microsecond), 100*r.Share)
	}
}
