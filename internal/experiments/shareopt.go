package experiments

import (
	"fmt"
	"io"

	"parajoin/internal/shares"
)

// ShareOptimizers reproduces Figure 11: the workload-to-optimal ratio of
// the three HyperCube configuration algorithms (Algorithm 1, round-down,
// and random allocation of 4096 virtual cells) for several cluster sizes.
type ShareOptimizers struct {
	// Rows[queryName][n] holds the three ratios.
	Rows []ShareOptRow
}

// ShareOptRow is one (query, cluster size) cell of Figure 11.
type ShareOptRow struct {
	Query   string
	Workers int
	OurAlg  float64
	OurCfg  shares.Config
	RoundDn float64
	RDCfg   shares.Config
	Random  float64
	RandomM int
}

// Figure11 evaluates the configuration algorithms on the given queries
// (the paper uses Q1–Q4) for N = 64, 63 and 65.
func (s *Suite) Figure11(queryNames []string, sizes []int) (*ShareOptimizers, error) {
	if len(sizes) == 0 {
		sizes = []int{64, 63, 65}
	}
	w := s.Workload()
	cat := s.Catalog()
	out := &ShareOptimizers{}
	for _, n := range sizes {
		for _, name := range queryNames {
			q := w.Query(name)
			row := ShareOptRow{Query: name, Workers: n, RandomM: 4096}

			opt, err := shares.Optimize(q, cat, n)
			if err != nil {
				return nil, err
			}
			row.OurCfg = opt
			if row.OurAlg, err = shares.WorkloadRatio(q, cat, opt, n); err != nil {
				return nil, err
			}

			rd, err := shares.RoundDown(q, cat, n)
			if err != nil {
				return nil, err
			}
			row.RDCfg = rd
			if row.RoundDn, err = shares.WorkloadRatio(q, cat, rd, n); err != nil {
				return nil, err
			}

			alloc, err := shares.RandomCells(q, cat, n, row.RandomM, s.Seed)
			if err != nil {
				return nil, err
			}
			wl, err := alloc.Workload(q, cat)
			if err != nil {
				return nil, err
			}
			frac, err := shares.SolveFractional(q, cat, n)
			if err != nil {
				return nil, err
			}
			if frac.TotalLoad > 0 {
				row.Random = wl / frac.TotalLoad
			}
			out.Rows = append(out.Rows, row)
		}
	}
	return out, nil
}

// Render prints Figure 11 as a table.
func (f *ShareOptimizers) Render(w io.Writer) {
	fmt.Fprintln(w, "Figure 11: workload-to-optimal ratio of HyperCube configuration algorithms")
	fmt.Fprintf(w, "%-4s %4s %10s %-18s %10s %-18s %16s\n",
		"q", "N", "our alg", "(config)", "round dn", "(config)", "random(4096)")
	for _, r := range f.Rows {
		fmt.Fprintf(w, "%-4s %4d %10.2f %-18s %10.2f %-18s %16.2f\n",
			r.Query, r.Workers, r.OurAlg, r.OurCfg, r.RoundDn, r.RDCfg, r.Random)
	}
}
