package experiments

import (
	"fmt"
	"io"

	"parajoin/internal/planner"
)

// SixConfigs is the three-panel figure the paper draws per query (Figures
// 3, 4, 6, 9, 13, 14, 15, 17): wall-clock time, total CPU time, and tuples
// shuffled for every shuffle × join configuration.
type SixConfigs struct {
	Query string
	Rows  []*RunOutcome
}

// SixConfigs runs all six configurations of the named workload query on
// the suite's cluster. Results are cached per query so Table 6 and the
// per-query figures share one sweep.
func (s *Suite) SixConfigs(queryName string) (*SixConfigs, error) {
	s.mu.Lock()
	if s.sixCache == nil {
		s.sixCache = map[string]*SixConfigs{}
	}
	if cached, ok := s.sixCache[queryName]; ok {
		s.mu.Unlock()
		return cached, nil
	}
	s.mu.Unlock()

	out := &SixConfigs{Query: queryName}
	for _, cfg := range planner.Configs {
		row, err := s.RunConfig(queryName, cfg, s.Workers)
		if err != nil {
			return nil, err
		}
		out.Rows = append(out.Rows, row)
	}
	s.mu.Lock()
	s.sixCache[queryName] = out
	s.mu.Unlock()
	return out, nil
}

// Best returns the fastest non-failed configuration.
func (sc *SixConfigs) Best() *RunOutcome {
	var best *RunOutcome
	for _, r := range sc.Rows {
		if r.Failed {
			continue
		}
		if best == nil || r.Wall < best.Wall {
			best = r
		}
	}
	return best
}

// Row returns the outcome for one configuration, or nil.
func (sc *SixConfigs) Row(cfg planner.PlanConfig) *RunOutcome {
	for _, r := range sc.Rows {
		if r.Config == cfg {
			return r
		}
	}
	return nil
}

// Render prints the figure's three panels as one table.
func (sc *SixConfigs) Render(w io.Writer) {
	fmt.Fprintf(w, "%s: shuffle × join configurations\n", sc.Query)
	fmt.Fprintf(w, "%-8s %12s %12s %14s %10s\n", "config", "wall", "cpu", "tuples shuffled", "results")
	for _, r := range sc.Rows {
		if r.Failed {
			fmt.Fprintf(w, "%-8s %12s %12s %14d %10s\n", r.Config, "FAIL("+r.FailWhy+")", "-", r.Shuffled, "-")
			continue
		}
		fmt.Fprintf(w, "%-8s %12s %12s %14d %10d\n", r.Config, r.Wall.Round(10e3), r.CPU.Round(10e3), r.Shuffled, r.Results)
	}
	if best := sc.Best(); best != nil {
		fmt.Fprintf(w, "best: %s\n", best.Config)
	}
}
