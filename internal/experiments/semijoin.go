package experiments

import (
	"fmt"
	"io"
	"time"

	"parajoin/internal/planner"
)

// SemijoinStudy reproduces Section 3.6: compare the distributed Yannakakis
// semijoin plan against the regular-shuffle and HyperCube plans on the
// workload's acyclic queries (Q3 and Q7).
type SemijoinStudy struct {
	Rows []SemijoinRow
}

// SemijoinRow is one query's comparison.
type SemijoinRow struct {
	Query string
	// Semijoin measurements.
	SemiWall     time.Duration
	SemiShuffled int64
	SemiRounds   int
	// Best regular-shuffle plan (RS_HJ vs RS_TJ) and HC_TJ for context.
	RSWall     time.Duration
	RSShuffled int64
	HCWall     time.Duration
	HCShuffled int64
}

// SemijoinStudy runs the comparison for the given acyclic queries.
func (s *Suite) SemijoinStudy(queryNames ...string) (*SemijoinStudy, error) {
	if len(queryNames) == 0 {
		queryNames = []string{"Q3", "Q7"}
	}
	out := &SemijoinStudy{}
	for _, name := range queryNames {
		row := SemijoinRow{Query: name}
		semi, err := s.RunConfig(name, planner.SemiJoin, s.Workers)
		if err != nil {
			return nil, err
		}
		row.SemiWall, row.SemiShuffled = semi.Wall, semi.Shuffled
		row.SemiRounds = len(semi.Plan.Rounds)

		sc, err := s.SixConfigs(name)
		if err != nil {
			return nil, err
		}
		rsHJ, rsTJ := sc.Row(planner.RSHJ), sc.Row(planner.RSTJ)
		rs := rsHJ
		if !rsTJ.Failed && (rs.Failed || rsTJ.Wall < rs.Wall) {
			rs = rsTJ
		}
		row.RSWall, row.RSShuffled = rs.Wall, rs.Shuffled

		hc := sc.Row(planner.HCTJ)
		row.HCWall, row.HCShuffled = hc.Wall, hc.Shuffled
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// Render prints the comparison.
func (t *SemijoinStudy) Render(w io.Writer) {
	fmt.Fprintln(w, "Semijoin (Yannakakis/GYM) plans vs regular and HyperCube shuffles (§3.6)")
	fmt.Fprintf(w, "%-4s %7s %12s %14s %12s %14s %12s %14s\n",
		"q", "rounds", "semi wall", "semi shuffled", "RS wall", "RS shuffled", "HC wall", "HC shuffled")
	for _, r := range t.Rows {
		fmt.Fprintf(w, "%-4s %7d %12v %14d %12v %14d %12v %14d\n",
			r.Query, r.SemiRounds,
			r.SemiWall.Round(time.Microsecond), r.SemiShuffled,
			r.RSWall.Round(time.Microsecond), r.RSShuffled,
			r.HCWall.Round(time.Microsecond), r.HCShuffled)
	}
}
