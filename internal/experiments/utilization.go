package experiments

import (
	"fmt"
	"io"
	"sort"
	"time"

	"parajoin/internal/planner"
)

// Utilization reproduces Figure 8: the per-worker busy-time profile of two
// configurations of one query, exposing the long-tail workers that make
// HC_TJ's wall-clock time exceed BR_TJ's on Q4 despite its lower total CPU.
type Utilization struct {
	Query    string
	Profiles []UtilizationProfile
}

// UtilizationProfile is one configuration's per-worker busy times.
type UtilizationProfile struct {
	Config planner.PlanConfig
	Busy   []time.Duration // per worker, sorted descending
	Total  time.Duration
	Max    time.Duration
	Median time.Duration
	Skew   float64
}

// Utilization profiles the named configurations (the paper compares HC_TJ
// and BR_TJ on Q4).
func (s *Suite) Utilization(queryName string, cfgs ...planner.PlanConfig) (*Utilization, error) {
	if len(cfgs) == 0 {
		cfgs = []planner.PlanConfig{planner.HCTJ, planner.BRTJ}
	}
	out := &Utilization{Query: queryName}
	sc, err := s.SixConfigs(queryName)
	if err != nil {
		return nil, err
	}
	for _, cfg := range cfgs {
		run := sc.Row(cfg)
		if run.Failed || run.Report == nil {
			continue
		}
		busy := append([]time.Duration(nil), run.Report.BusyTime...)
		sort.Slice(busy, func(i, j int) bool { return busy[i] > busy[j] })
		p := UtilizationProfile{Config: cfg, Busy: busy, Total: run.Report.TotalBusy(),
			Max: run.Report.MaxBusy(), Skew: run.Report.BusySkew()}
		if len(busy) > 0 {
			p.Median = busy[len(busy)/2]
		}
		out.Profiles = append(out.Profiles, p)
	}
	return out, nil
}

// Render prints the profile summary plus a coarse per-worker bar chart.
func (u *Utilization) Render(w io.Writer) {
	fmt.Fprintf(w, "%s: worker utilization (Figure 8)\n", u.Query)
	for _, p := range u.Profiles {
		fmt.Fprintf(w, "%-8s total=%v max=%v median=%v skew(max/avg)=%.2f\n",
			p.Config, p.Total.Round(time.Microsecond), p.Max.Round(time.Microsecond),
			p.Median.Round(time.Microsecond), p.Skew)
		if p.Max <= 0 {
			continue
		}
		for i, b := range p.Busy {
			if i >= 8 { // top of the tail is what matters
				fmt.Fprintf(w, "    ... %d more workers\n", len(p.Busy)-i)
				break
			}
			bars := int(40 * float64(b) / float64(p.Max))
			fmt.Fprintf(w, "    w%-3d %-40s %v\n", i, barString(bars), b.Round(time.Microsecond))
		}
	}
}

func barString(n int) string {
	s := make([]byte, n)
	for i := range s {
		s[i] = '#'
	}
	return string(s)
}
