package experiments

import (
	"fmt"
	"io"

	"parajoin/internal/core"
	"parajoin/internal/planner"
)

// Summary reproduces Table 6: one row per query with the structural facts
// (tables joined, join variables, cyclicity, input size), the traffic of
// the regular and HyperCube shuffles, the regular shuffle's worst skew, the
// RS_HJ/HC_TJ speed ratio, and the fastest configuration.
type Summary struct {
	Rows []SummaryRow
}

// SummaryRow is one query's Table-6 row.
type SummaryRow struct {
	Query     string
	Tables    int
	JoinVars  int
	Cyclic    bool
	InputSize int
	RSSize    int64
	HCSize    int64
	RSSkew    float64
	// TimeRatio is Time(RS_HJ)/Time(HC_TJ); 0 when either failed.
	TimeRatio float64
	Best      planner.PlanConfig
	BestWall  string
}

// Table6 runs every workload query under all six configurations.
func (s *Suite) Table6(queryNames ...string) (*Summary, error) {
	w := s.Workload()
	if len(queryNames) == 0 {
		queryNames = w.Names()
	}
	out := &Summary{}
	for _, name := range queryNames {
		q := w.Query(name)
		sc, err := s.SixConfigs(name)
		if err != nil {
			return nil, err
		}
		row := SummaryRow{
			Query:     name,
			Tables:    len(q.Atoms),
			JoinVars:  len(q.JoinVars()),
			Cyclic:    !core.IsAcyclic(q),
			InputSize: w.InputSize(q),
		}
		if rs := sc.Row(planner.RSHJ); rs != nil {
			row.RSSize = rs.Shuffled
			if rs.Report != nil {
				row.RSSkew = rs.Report.MaxConsumerSkew()
			}
		}
		if hc := sc.Row(planner.HCTJ); hc != nil {
			row.HCSize = hc.Shuffled
		}
		rs, hc := sc.Row(planner.RSHJ), sc.Row(planner.HCTJ)
		if rs != nil && hc != nil && !rs.Failed && !hc.Failed && hc.Wall > 0 {
			row.TimeRatio = float64(rs.Wall) / float64(hc.Wall)
		}
		if best := sc.Best(); best != nil {
			row.Best = best.Config
			row.BestWall = best.Wall.String()
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// Render prints Table 6.
func (t *Summary) Render(w io.Writer) {
	fmt.Fprintln(w, "Table 6: Summary of the extended evaluation")
	fmt.Fprintf(w, "%-4s %7s %9s %7s %11s %11s %11s %8s %22s %8s\n",
		"q", "tables", "join-vars", "cyclic", "input", "RS size", "HC size", "RS skew", "T(RS_HJ)/T(HC_TJ)", "best")
	for _, r := range t.Rows {
		cyc := "N"
		if r.Cyclic {
			cyc = "Y"
		}
		ratio := "-"
		if r.TimeRatio > 0 {
			ratio = fmt.Sprintf("%.2f", r.TimeRatio)
		}
		fmt.Fprintf(w, "%-4s %7d %9d %7s %11d %11d %11d %8.2f %22s %8s\n",
			r.Query, r.Tables, r.JoinVars, cyc, r.InputSize, r.RSSize, r.HCSize, r.RSSkew, ratio, r.Best)
	}
}
