package experiments

import (
	"bytes"
	"testing"
)

func TestSkewStudy(t *testing.T) {
	s := tinySuite()
	defer s.Close()
	st, err := s.SkewStudy("Q1")
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Rows) != 1 {
		t.Fatalf("%d rows", len(st.Rows))
	}
	r := st.Rows[0]
	if !r.ResultsAgree {
		t.Fatal("skew-aware plan changed the query result")
	}
	if r.PlainShuffled == 0 || r.SkewAwareShuf == 0 {
		t.Fatal("missing shuffle counts")
	}
	var buf bytes.Buffer
	st.Render(&buf)
	if buf.Len() == 0 {
		t.Fatal("empty render")
	}
}
