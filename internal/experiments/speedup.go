package experiments

import (
	"fmt"
	"io"
	"time"

	"parajoin/internal/engine"
	"parajoin/internal/planner"
)

// SpeedupStudy is the intra-worker parallelism sweep ("Figure 10b"): the
// same query under HC_TJ at sub-join parallelism K ∈ {1, 2, 4, ...} on one
// cluster. Wall-clock speedup over K=1 is the headline on a multi-core
// host; on a host with fewer free cores than K the deterministic counters
// (sub-join tasks, claim balance, identical result counts) still verify
// that the range partitioning engaged and stayed correct.
type SpeedupStudy struct {
	Workers int
	Rows    []SpeedupRow
}

// SpeedupRow is one (query, K) measurement.
type SpeedupRow struct {
	Query string
	K     int
	Wall  time.Duration
	CPU   time.Duration
	// Results is the answer count — identical across K by construction
	// (the determinism tests check the rows byte-for-byte; the study
	// checks the counts as a cheap cross-run invariant).
	Results int
	// JoinTasks counts executed sub-ranges (0 when the join ran serially);
	// StealMax is the most sub-ranges one pool goroutine claimed.
	JoinTasks int64
	StealMax  int64
	// Speedup is wall(K=1) / wall(K).
	Speedup float64
}

// Speedup runs each query under HC_TJ for every K on an n-worker cluster.
// K=1 (the serial baseline) is prepended when missing.
func (s *Suite) Speedup(n int, ks []int, queryNames ...string) (*SpeedupStudy, error) {
	if len(ks) == 0 || ks[0] != 1 {
		ks = append([]int{1}, ks...)
	}
	if len(queryNames) == 0 {
		queryNames = []string{"Q1", "Q2"}
	}
	w := s.Workload()
	study := &SpeedupStudy{Workers: n}
	for _, qn := range queryNames {
		q := w.Query(qn)
		var base time.Duration
		var baseResults int
		for i, k := range ks {
			opts := engine.RunOpts{Parallelism: k}
			if k <= 1 {
				opts.Parallelism = -1 // force the serial baseline
			}
			label := fmt.Sprintf("%s×K%d", planner.HCTJ, k)
			out, err := s.runOn(s.Cluster(n), q, planner.HCTJ, n, label, opts)
			if err != nil {
				return nil, err
			}
			if out.Failed {
				return nil, fmt.Errorf("experiments: %s at K=%d failed: %s", qn, k, out.FailWhy)
			}
			row := SpeedupRow{Query: qn, K: k, Wall: out.Wall, CPU: out.CPU, Results: out.Results}
			if out.Report != nil {
				row.JoinTasks = out.Report.JoinTasks
				row.StealMax = out.Report.JoinStealMax
			}
			if i == 0 {
				base, baseResults = out.Wall, out.Results
			} else if out.Results != baseResults {
				return nil, fmt.Errorf("experiments: %s at K=%d produced %d results, serial produced %d",
					qn, k, out.Results, baseResults)
			}
			if out.Wall > 0 {
				row.Speedup = float64(base) / float64(out.Wall)
			}
			study.Rows = append(study.Rows, row)
		}
	}
	return study, nil
}

// Render prints the sweep as the Figure-10b table.
func (st *SpeedupStudy) Render(w io.Writer) {
	fmt.Fprintf(w, "intra-worker parallel Tributary join on %d workers (speedup = wall vs K=1)\n", st.Workers)
	fmt.Fprintf(w, "%6s %4s %12s %12s %10s %10s %10s %9s\n",
		"query", "K", "wall", "cpu", "results", "subjoins", "steal max", "speedup")
	for _, r := range st.Rows {
		fmt.Fprintf(w, "%6s %4d %12v %12v %10d %10d %10d %9.2f\n",
			r.Query, r.K, r.Wall.Round(time.Microsecond), r.CPU.Round(time.Microsecond),
			r.Results, r.JoinTasks, r.StealMax, r.Speedup)
	}
}
