// Package experiments regenerates every table and figure of the paper's
// evaluation on the synthetic workload. Each experiment returns a
// structured result with a Render method that prints the same rows/series
// the paper reports; bench_test.go and cmd/benchrunner are thin wrappers
// around this package.
//
// Absolute numbers differ from the paper — the substrate is an in-process
// engine on synthetic data, not Myria on a 16-machine cluster — but the
// comparisons (which configuration wins, by roughly what factor, where the
// crossovers fall) are the reproduction target.
package experiments

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"parajoin/internal/core"
	"parajoin/internal/dataset"
	"parajoin/internal/engine"
	"parajoin/internal/fault"
	"parajoin/internal/ljoin"
	"parajoin/internal/planner"
	"parajoin/internal/queries"
	"parajoin/internal/stats"
	"parajoin/internal/trace"
)

// Suite holds the workload and cluster every experiment runs against.
type Suite struct {
	// Workers is the cluster size; the paper uses 64.
	Workers int
	// Graph and KB size the synthetic datasets.
	Graph dataset.GraphConfig
	KB    dataset.KBConfig
	// MemLimitTuples is the per-worker materialization budget; runs that
	// exceed it report FAIL, reproducing the paper's out-of-memory entries.
	MemLimitTuples int64
	// Spill is the spill-to-disk policy for all clusters (set it before the
	// first Cluster call). With engine.SpillOnPressure, runs that cross the
	// budget degrade to external sort instead of reporting FAIL.
	Spill engine.SpillPolicy
	// MaxSpillBytes caps spilled bytes per run; exceeding it reports FAIL
	// with reason SPILL-CAP. 0 = unlimited.
	MaxSpillBytes int64
	// Parallelism is the intra-worker join parallelism for all clusters
	// (set it before the first Cluster call): 0 = automatic, 1 = serial,
	// K>1 = up to K concurrent sub-joins per worker. Figure 10b overrides
	// it per run to sweep K.
	Parallelism int
	// Timeout bounds each single run (the paper kills queries at 1000 s).
	Timeout time.Duration
	// Seed drives order sampling.
	Seed int64
	// Tracer, when set, traces every run on the suite's clusters (set it
	// before the first Cluster call).
	Tracer *trace.Tracer
	// FaultPlan, when set, wraps every cluster's transport in a
	// deterministic fault injector (set it before the first Cluster call) —
	// benchrunner's -chaos mode. Runs that hit an injected fault report the
	// transport error; stall rules only perturb timing.
	FaultPlan *fault.Plan
	// Record keeps a RecordedOutcome per executed run, retrievable with
	// Outcomes — the data behind benchrunner's -json report.
	Record bool
	// Columnar routes every cluster's exchange batches through the colbatch
	// codec (set it before the first Cluster call), so reported byte
	// counters measure encoded wire bytes — the quantity the bytes/tuple
	// study compares against the flat 8-bytes-per-value baseline. Results
	// are identical either way. NewSuite turns it on.
	Columnar bool

	mu         sync.Mutex
	workload   *queries.Workload
	catalog    *stats.Catalog
	clusters   map[int]*engine.Cluster
	planners   map[int]*planner.Planner
	sixCache   map[string]*SixConfigs
	orderCache map[string]*OrderStudy
	outcomes   []*RecordedOutcome
}

// NewSuite returns a suite with laptop-scale defaults: 64 workers (the
// paper's cluster size) over the default synthetic datasets.
func NewSuite() *Suite {
	return &Suite{
		Workers:        64,
		Graph:          dataset.DefaultTwitter(),
		KB:             dataset.DefaultKB(),
		MemLimitTuples: 2_000_000,
		Timeout:        5 * time.Minute,
		Seed:           1,
		Columnar:       true,
	}
}

// Workload generates (once) and returns the datasets and queries.
func (s *Suite) Workload() *queries.Workload {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.workloadLocked()
}

func (s *Suite) workloadLocked() *queries.Workload {
	if s.workload == nil {
		s.workload = queries.New(s.Graph, s.KB)
		s.catalog = stats.NewCatalog()
		for _, r := range s.workload.Relations {
			s.catalog.Add(r)
		}
	}
	return s.workload
}

// Catalog returns the statistics catalog of the workload's relations.
func (s *Suite) Catalog() *stats.Catalog {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.workloadLocked()
	return s.catalog
}

// Cluster returns (building and loading on first use) an n-worker cluster
// with every workload relation round-robin partitioned.
func (s *Suite) Cluster(n int) *engine.Cluster {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.clusters == nil {
		s.clusters = map[int]*engine.Cluster{}
	}
	c, ok := s.clusters[n]
	if !ok {
		w := s.workloadLocked()
		c = engine.NewCluster(n)
		if s.Columnar {
			if mt, ok := c.Transport().(*engine.MemTransport); ok {
				mt.Columnar = true
			}
		}
		c.MaxLocalTuples = s.MemLimitTuples
		c.SpillPolicy = s.Spill
		c.MaxSpillBytes = s.MaxSpillBytes
		c.Parallelism = s.Parallelism
		c.Tracer = s.Tracer
		for _, r := range w.Relations {
			c.Load(r)
		}
		if s.FaultPlan != nil {
			inj := s.FaultPlan.NewInjector()
			c.WrapTransport(func(t engine.Transport) engine.Transport {
				return fault.Wrap(t, inj)
			})
		}
		s.clusters[n] = c
	}
	return c
}

// Planner returns the planner for an n-worker cluster.
func (s *Suite) Planner(n int) *planner.Planner {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.planners == nil {
		s.planners = map[int]*planner.Planner{}
	}
	p, ok := s.planners[n]
	if !ok {
		w := s.workloadLocked()
		p = &planner.Planner{
			Workers:   n,
			Catalog:   s.catalog,
			Relations: w.Relations,
			MaxOrders: 5040,
			Seed:      s.Seed,
			Mode:      ljoin.SeekBinary,
		}
		s.planners[n] = p
	}
	return p
}

// Close releases all clusters.
func (s *Suite) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, c := range s.clusters {
		c.Close()
	}
	s.clusters = nil
}

// RunOutcome is one query execution's measurements.
type RunOutcome struct {
	Config   planner.PlanConfig
	Failed   bool
	FailWhy  string
	Wall     time.Duration
	CPU      time.Duration
	Shuffled int64
	Results  int
	Report   *engine.Report
	Plan     *planner.Result
}

// RecordedOutcome is one executed run in the suite's log (see Record): the
// RunOutcome's measurements plus identifying context, with the full Report
// (byte counters included) for machine consumption.
type RecordedOutcome struct {
	Query    string
	Config   string
	Workers  int
	Failed   bool   `json:",omitempty"`
	FailWhy  string `json:",omitempty"`
	Wall     time.Duration
	CPU      time.Duration
	Shuffled int64
	Results  int
	// Bytes is the run's transport bytes sent (exchange traffic), when the
	// measuring harness has them outside the full Report — the distributed
	// scaling study records it per arm.
	Bytes int64 `json:",omitempty"`
	// PeakResident is the largest per-worker in-memory working set over the
	// run; SpilledBytes and SpillSegments describe spill-to-disk activity.
	PeakResident  int64          `json:",omitempty"`
	SpilledBytes  int64          `json:",omitempty"`
	SpillSegments int64          `json:",omitempty"`
	Report        *engine.Report `json:",omitempty"`
}

// RecordOutcome appends one externally measured run to the JSON record
// (no-op unless Record is set). The distributed scaling study uses it: its
// runs execute on their own coordinator+data-node stack rather than on the
// suite's in-process clusters.
func (s *Suite) RecordOutcome(o *RecordedOutcome) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.Record {
		s.outcomes = append(s.outcomes, o)
	}
}

// Outcomes returns the runs recorded so far (Record must be set).
func (s *Suite) Outcomes() []*RecordedOutcome {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*RecordedOutcome(nil), s.outcomes...)
}

// RunConfig plans and executes one configuration of a workload query on an
// n-worker cluster. Out-of-memory and timeout become Failed outcomes (the
// paper's FAIL cells); other errors are returned.
func (s *Suite) RunConfig(queryName string, cfg planner.PlanConfig, n int) (*RunOutcome, error) {
	w := s.Workload()
	return s.RunQuery(w.Query(queryName), cfg, n)
}

// RunQuery is RunConfig for an ad-hoc query over the workload's relations
// (cmd/parajoin's -rule mode).
func (s *Suite) RunQuery(q *core.Query, cfg planner.PlanConfig, n int) (*RunOutcome, error) {
	s.Workload()
	return s.runOn(s.Cluster(n), q, cfg, n, cfg.String(), engine.RunOpts{})
}

// runOn is the execution core behind RunQuery, shared with experiments
// (Figure 10b) that re-run one configuration under per-run engine options;
// label names the configuration in the recorded outcome.
func (s *Suite) runOn(c *engine.Cluster, q *core.Query, cfg planner.PlanConfig, n int, label string, opts engine.RunOpts) (*RunOutcome, error) {
	p := s.Planner(n)

	res, err := p.Plan(q, cfg)
	if err != nil {
		return nil, fmt.Errorf("experiments: planning %s/%v: %w", q.Name, cfg, err)
	}
	timeout := s.Timeout
	if timeout <= 0 {
		timeout = 5 * time.Minute
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()

	start := time.Now()
	result, report, err := c.RunRoundsOpts(ctx, res.Rounds, opts)
	wall := time.Since(start)

	out := &RunOutcome{Config: cfg, Wall: wall, Plan: res, Report: report}
	if report != nil {
		out.CPU = report.TotalCPU()
		out.Shuffled = report.TotalTuplesShuffled()
	}
	switch {
	case err == nil:
		// Projection queries dedup per worker only; count the global set so
		// result sizes are comparable across configurations.
		if !q.IsFull() {
			result = result.Clone().Dedup()
		}
		out.Results = result.Cardinality()
	case errors.Is(err, engine.ErrOutOfMemory):
		out.Failed, out.FailWhy = true, "OOM"
	case errors.Is(err, engine.ErrSpillBudget):
		out.Failed, out.FailWhy = true, "SPILL-CAP"
	case errors.Is(err, context.DeadlineExceeded):
		out.Failed, out.FailWhy = true, "TIMEOUT"
	default:
		return nil, fmt.Errorf("experiments: running %s/%v: %w", q.Name, cfg, err)
	}
	if s.Record {
		rec := &RecordedOutcome{
			Query: q.Name, Config: label, Workers: n,
			Failed: out.Failed, FailWhy: out.FailWhy,
			Wall: out.Wall, CPU: out.CPU,
			Shuffled: out.Shuffled, Results: out.Results, Report: out.Report,
		}
		if report != nil {
			for _, p := range report.PeakResidentTuples {
				if p > rec.PeakResident {
					rec.PeakResident = p
				}
			}
			rec.SpilledBytes = report.SpilledBytes
			rec.SpillSegments = report.SpillSegments
		}
		s.mu.Lock()
		s.outcomes = append(s.outcomes, rec)
		s.mu.Unlock()
	}
	return out, nil
}
