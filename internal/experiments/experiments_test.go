package experiments

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"parajoin/internal/dataset"
	"parajoin/internal/planner"
)

// tinySuite runs every experiment in seconds: 8 workers, small data.
func tinySuite() *Suite {
	return &Suite{
		Workers:        8,
		Graph:          dataset.GraphConfig{Edges: 2000, Nodes: 300, Skew: 1.3, Seed: 11},
		KB:             dataset.KBConfig{Actors: 300, Films: 200, Performances: 1000, Directors: 40, Honors: 150, Awards: 8, Seed: 11},
		MemLimitTuples: 5_000_000,
		Timeout:        time.Minute,
		Seed:           3,
	}
}

func TestSixConfigsAllAgree(t *testing.T) {
	s := tinySuite()
	defer s.Close()
	sc, err := s.SixConfigs("Q1")
	if err != nil {
		t.Fatal(err)
	}
	if len(sc.Rows) != 6 {
		t.Fatalf("%d rows", len(sc.Rows))
	}
	results := -1
	for _, r := range sc.Rows {
		if r.Failed {
			t.Fatalf("%v failed: %s", r.Config, r.FailWhy)
		}
		if results == -1 {
			results = r.Results
		} else if r.Results != results {
			t.Errorf("%v returned %d results, others %d", r.Config, r.Results, results)
		}
	}
	// HyperCube must shuffle less than broadcast on the triangle query.
	hc, br := sc.Row(planner.HCTJ), sc.Row(planner.BRTJ)
	if hc.Shuffled >= br.Shuffled {
		t.Errorf("HC shuffled %d, BR %d; HC must be below BR on Q1", hc.Shuffled, br.Shuffled)
	}
	var buf bytes.Buffer
	sc.Render(&buf)
	if !strings.Contains(buf.String(), "RS_HJ") {
		t.Error("render output missing configuration rows")
	}
}

func TestProjectionQueryResultsAgree(t *testing.T) {
	s := tinySuite()
	defer s.Close()
	sc, err := s.SixConfigs("Q3")
	if err != nil {
		t.Fatal(err)
	}
	results := -1
	for _, r := range sc.Rows {
		if r.Failed {
			t.Fatalf("%v failed: %s", r.Config, r.FailWhy)
		}
		if results == -1 {
			results = r.Results
		} else if r.Results != results {
			t.Errorf("%v returned %d results, others %d", r.Config, r.Results, results)
		}
	}
	if results <= 0 {
		t.Error("Q3 should have answers")
	}
}

func TestTables(t *testing.T) {
	s := tinySuite()
	defer s.Close()

	t1 := s.Table1()
	if len(t1.Rows) != 4 || t1.Rows[1].Name != "ActorPerform" {
		t.Fatalf("Table1 rows: %+v", t1.Rows)
	}
	t8 := s.Table8()
	if len(t8.Rows) != 4 {
		t.Fatalf("Table8 rows: %+v", t8.Rows)
	}
	if t8.Rows[0].Tuples != 1 {
		t.Errorf("σ_name(ObjectName) = %d tuples, want 1", t8.Rows[0].Tuples)
	}

	t2, err := s.Table2()
	if err != nil {
		t.Fatal(err)
	}
	// RS_HJ on Q1 has 4 shuffles: R, S, intermediate, T.
	if len(t2.Rows) != 4 {
		t.Fatalf("Table2 has %d exchanges, want 4", len(t2.Rows))
	}
	t3, err := s.Table3()
	if err != nil {
		t.Fatal(err)
	}
	if len(t3.Rows) != 3 {
		t.Fatalf("Table3 has %d exchanges, want 3 (one per atom)", len(t3.Rows))
	}
	// HC consumer skew must be mild on every exchange.
	for _, r := range t3.Rows {
		if r.ConsumerSkew > 3 {
			t.Errorf("HC shuffle %s skew %.2f unexpectedly high", r.Name, r.ConsumerSkew)
		}
	}
	t4, err := s.Table4()
	if err != nil {
		t.Fatal(err)
	}
	if len(t4.Rows) != 2 {
		t.Fatalf("Table4 has %d exchanges, want 2 broadcasts", len(t4.Rows))
	}

	t5, err := s.Table5()
	if err != nil {
		t.Fatal(err)
	}
	if len(t5.Rows) == 0 {
		t.Fatal("Table5 empty")
	}
	var buf bytes.Buffer
	t1.Render(&buf)
	t2.Render(&buf)
	t5.Render(&buf)
	if buf.Len() == 0 {
		t.Fatal("renders produced nothing")
	}
}

func TestTable6Summary(t *testing.T) {
	s := tinySuite()
	defer s.Close()
	sum, err := s.Table6("Q1", "Q7")
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.Rows) != 2 {
		t.Fatalf("%d rows", len(sum.Rows))
	}
	q1 := sum.Rows[0]
	if !q1.Cyclic || q1.Tables != 3 || q1.JoinVars != 3 {
		t.Errorf("Q1 row: %+v", q1)
	}
	q7 := sum.Rows[1]
	if q7.Cyclic || q7.Tables != 4 || q7.JoinVars != 2 {
		t.Errorf("Q7 row: %+v", q7)
	}
	var buf bytes.Buffer
	sum.Render(&buf)
	if !strings.Contains(buf.String(), "Q1") {
		t.Error("render missing Q1")
	}
}

func TestOrderStudy(t *testing.T) {
	s := tinySuite()
	defer s.Close()
	st, err := s.OrderStudy("Q7", 2, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Samples) != 2 {
		t.Fatalf("%d samples", len(st.Samples))
	}
	if st.Best.Estimate <= 0 {
		t.Error("best order estimate should be positive")
	}
	// The model's best order should not do more seeks than the worst sample.
	worst := st.Samples[0]
	for _, smp := range st.Samples {
		if smp.Seeks > worst.Seeks {
			worst = smp
		}
	}
	if st.Best.Seeks > worst.Seeks {
		t.Errorf("best order did %d seeks, worst random %d", st.Best.Seeks, worst.Seeks)
	}
	var buf bytes.Buffer
	st.Render(&buf)
	if !strings.Contains(buf.String(), "correlation") {
		t.Error("render missing correlation")
	}
}

func TestScalabilityLoadDrops(t *testing.T) {
	s := tinySuite()
	defer s.Close()
	sc, err := s.Scalability("Q1", 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(sc.Rows) != 2 {
		t.Fatalf("%d rows", len(sc.Rows))
	}
	if sc.Rows[1].SpeedupHC <= 1 {
		t.Errorf("HC per-worker load speedup at 8 workers = %.2f, want > 1", sc.Rows[1].SpeedupHC)
	}
	if sc.Rows[1].SortedPerWorker >= sc.Rows[0].SortedPerWorker {
		t.Errorf("sorted/worker should drop: %d at 2 workers, %d at 8",
			sc.Rows[0].SortedPerWorker, sc.Rows[1].SortedPerWorker)
	}
	var buf bytes.Buffer
	sc.Render(&buf)
	if buf.Len() == 0 {
		t.Fatal("empty render")
	}
}

func TestFigure11Ordering(t *testing.T) {
	s := tinySuite()
	defer s.Close()
	f, err := s.Figure11([]string{"Q1", "Q2"}, []int{8, 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Rows) != 4 {
		t.Fatalf("%d rows", len(f.Rows))
	}
	for _, r := range f.Rows {
		if r.OurAlg > r.RoundDn+1e-9 {
			t.Errorf("%s N=%d: our alg ratio %.3f worse than round-down %.3f",
				r.Query, r.Workers, r.OurAlg, r.RoundDn)
		}
		if r.Random < r.OurAlg {
			t.Errorf("%s N=%d: random allocation %.3f should not beat our alg %.3f",
				r.Query, r.Workers, r.Random, r.OurAlg)
		}
	}
	var buf bytes.Buffer
	f.Render(&buf)
	if buf.Len() == 0 {
		t.Fatal("empty render")
	}
}

func TestUtilizationProfiles(t *testing.T) {
	s := tinySuite()
	defer s.Close()
	u, err := s.Utilization("Q1", planner.HCTJ, planner.BRTJ)
	if err != nil {
		t.Fatal(err)
	}
	if len(u.Profiles) != 2 {
		t.Fatalf("%d profiles", len(u.Profiles))
	}
	for _, p := range u.Profiles {
		if len(p.Busy) != 8 {
			t.Errorf("%v: %d workers profiled", p.Config, len(p.Busy))
		}
		if p.Skew < 1 {
			t.Errorf("%v: skew %.2f below 1", p.Config, p.Skew)
		}
	}
	var buf bytes.Buffer
	u.Render(&buf)
	if buf.Len() == 0 {
		t.Fatal("empty render")
	}
}

func TestSemijoinStudy(t *testing.T) {
	s := tinySuite()
	defer s.Close()
	st, err := s.SemijoinStudy("Q7")
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Rows) != 1 {
		t.Fatalf("%d rows", len(st.Rows))
	}
	r := st.Rows[0]
	if r.SemiRounds < 3 {
		t.Errorf("semijoin plan used %d rounds, want several", r.SemiRounds)
	}
	if r.SemiShuffled == 0 {
		t.Error("semijoin plan shuffled nothing")
	}
	var buf bytes.Buffer
	st.Render(&buf)
	if buf.Len() == 0 {
		t.Fatal("empty render")
	}
}

func TestRunConfigFailOutcomes(t *testing.T) {
	s := tinySuite()
	s.MemLimitTuples = 100
	defer s.Close()
	out, err := s.RunConfig("Q1", planner.RSTJ, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Failed || out.FailWhy != "OOM" {
		t.Fatalf("outcome = %+v, want OOM failure", out)
	}
}
