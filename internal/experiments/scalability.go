package experiments

import (
	"fmt"
	"io"
	"time"

	"parajoin/internal/planner"
)

// Scalability reproduces Figure 10: run Q1 (the triangle query) under
// HC_TJ and RS_HJ at growing cluster sizes. On a real cluster the paper
// plots wall-clock speedup; the quantity that drives it is the slowest
// worker's load, which we report directly as the deterministic
// MaxProcessed counter (this build's host may not have a core per worker,
// so raw wall times are reported but not the headline).
type Scalability struct {
	Query string
	Rows  []ScalabilityRow
}

// ScalabilityRow is one cluster size's measurements.
type ScalabilityRow struct {
	Workers int
	// MaxLoadHC / MaxLoadRS are the slowest worker's processed-tuple count —
	// the paper's panel (a) driver. Speedups are relative to the first row.
	MaxLoadHC int64
	MaxLoadRS int64
	SpeedupHC float64
	SpeedupRS float64
	// HCShuffled is the HyperCube shuffle's total traffic (panel b).
	HCShuffled int64
	// SortedPerWorker and SeeksPerWorker are panel (c): the average
	// worker's Tributary sort input and trie searches.
	SortedPerWorker int64
	SeeksPerWorker  int64
	// Raw wall times for reference.
	HCWall time.Duration
	RSWall time.Duration
}

// Scalability runs the query at each cluster size (the paper uses 2, 4, 8,
// 16, 32, 64).
func (s *Suite) Scalability(queryName string, sizes ...int) (*Scalability, error) {
	if len(sizes) == 0 {
		sizes = []int{2, 4, 8, 16, 32, 64}
	}
	out := &Scalability{Query: queryName}
	for _, n := range sizes {
		hc, err := s.RunConfig(queryName, planner.HCTJ, n)
		if err != nil {
			return nil, err
		}
		rs, err := s.RunConfig(queryName, planner.RSHJ, n)
		if err != nil {
			return nil, err
		}
		row := ScalabilityRow{Workers: n, HCWall: hc.Wall, RSWall: rs.Wall, HCShuffled: hc.Shuffled}
		if hc.Report != nil {
			row.MaxLoadHC = hc.Report.MaxProcessed()
			var sorted, seeks int64
			for w := range hc.Report.Sorted {
				sorted += hc.Report.Sorted[w]
				seeks += hc.Report.Seeks[w]
			}
			row.SortedPerWorker = sorted / int64(n)
			row.SeeksPerWorker = seeks / int64(n)
		}
		if rs.Report != nil {
			row.MaxLoadRS = rs.Report.MaxProcessed()
		}
		out.Rows = append(out.Rows, row)
	}
	base := out.Rows[0]
	for i := range out.Rows {
		if out.Rows[i].MaxLoadHC > 0 {
			out.Rows[i].SpeedupHC = float64(base.MaxLoadHC) / float64(out.Rows[i].MaxLoadHC)
		}
		if out.Rows[i].MaxLoadRS > 0 {
			out.Rows[i].SpeedupRS = float64(base.MaxLoadRS) / float64(out.Rows[i].MaxLoadRS)
		}
	}
	return out, nil
}

// Render prints the three panels of Figure 10.
func (sc *Scalability) Render(w io.Writer) {
	fmt.Fprintf(w, "%s: scalability of HC_TJ vs RS_HJ (Figure 10; speedup = slowest-worker load vs %d workers)\n",
		sc.Query, sc.Rows[0].Workers)
	fmt.Fprintf(w, "%8s %10s %10s %14s %14s %14s %12s %12s\n",
		"workers", "HC spdup", "RS spdup", "HC shuffled", "sorted/worker", "seeks/worker", "HC wall", "RS wall")
	for _, r := range sc.Rows {
		fmt.Fprintf(w, "%8d %10.2f %10.2f %14d %14d %14d %12v %12v\n",
			r.Workers, r.SpeedupHC, r.SpeedupRS, r.HCShuffled,
			r.SortedPerWorker, r.SeeksPerWorker,
			r.HCWall.Round(time.Microsecond), r.RSWall.Round(time.Microsecond))
	}
}
