package experiments

import (
	"fmt"
	"io"
	"math"
	"time"

	"parajoin/internal/core"
	"parajoin/internal/ljoin"
	"parajoin/internal/order"
	"parajoin/internal/rel"
)

// OrderStudy reproduces Table 7 and Figure 12: for a query, run the
// single-machine Tributary join under sampled random variable orders and
// under the cost model's best order, recording estimated cost against
// actual runtime and the correlation between them.
type OrderStudy struct {
	Query string
	// Samples pairs each tried order with its estimate and measurement.
	Samples []OrderSample
	// Best is the cost model's pick.
	Best OrderSample
	// AvgRandom is the mean runtime of the random samples (timeouts count
	// at the timeout value, mirroring the paper's 1000 s cap).
	AvgRandom time.Duration
	// Correlation is Pearson's r between log-estimated cost and runtime.
	Correlation float64
}

// OrderSample is one (order, estimate, measurement) triple.
type OrderSample struct {
	Order    []core.Var
	Estimate float64
	Runtime  time.Duration
	Seeks    int64
	TimedOut bool
}

// OrderStudy samples n random variable orders for the named query (the
// paper uses 20), plus the model's best order. Runs are capped at timeout.
// Results are cached per (query, n, timeout) so Table 7 and Figure 12 share
// one pass.
func (s *Suite) OrderStudy(queryName string, n int, timeout time.Duration) (*OrderStudy, error) {
	cacheKey := fmt.Sprintf("%s/%d/%s", queryName, n, timeout)
	s.mu.Lock()
	if s.orderCache == nil {
		s.orderCache = map[string]*OrderStudy{}
	}
	if cached, ok := s.orderCache[cacheKey]; ok {
		s.mu.Unlock()
		return cached, nil
	}
	s.mu.Unlock()
	w := s.Workload()
	q := w.Query(queryName)
	rels, err := w.AtomRelations(q)
	if err != nil {
		return nil, err
	}
	est, err := order.NewEstimator(q, rels)
	if err != nil {
		return nil, err
	}

	out := &OrderStudy{Query: queryName}
	for _, ord := range est.RandomOrders(n, s.Seed) {
		sample, err := runOrderSample(q, rels, est, ord, timeout)
		if err != nil {
			return nil, err
		}
		out.Samples = append(out.Samples, sample)
		out.AvgRandom += sample.Runtime
	}
	if len(out.Samples) > 0 {
		out.AvgRandom /= time.Duration(len(out.Samples))
	}

	bestOrd, _, err := est.Best(5040, s.Seed)
	if err != nil {
		return nil, err
	}
	out.Best, err = runOrderSample(q, rels, est, bestOrd, timeout)
	if err != nil {
		return nil, err
	}
	out.Correlation = pearson(out.Samples)
	s.mu.Lock()
	s.orderCache[cacheKey] = out
	s.mu.Unlock()
	return out, nil
}

func runOrderSample(q *core.Query, rels map[string]*rel.Relation, est *order.Estimator, ord []core.Var, timeout time.Duration) (OrderSample, error) {
	cost, err := est.Cost(ord)
	if err != nil {
		return OrderSample{}, err
	}
	sample := OrderSample{Order: ord, Estimate: cost}

	p, err := ljoin.Prepare(q, rels, ord, ljoin.SeekBinary)
	if err != nil {
		return OrderSample{}, err
	}
	deadline := time.Now().Add(timeout)
	// The stop check fires inside the join recursion, so even an order that
	// emits nothing for a long time is bounded by the deadline (the paper
	// kills queries at 1000 s).
	p.SetStopCheck(func() bool { return time.Now().After(deadline) })
	start := time.Now()
	err = p.Run(func(rel.Tuple) bool { return true })
	if err != nil {
		return OrderSample{}, err
	}
	sample.TimedOut = p.Stopped()
	sample.Runtime = time.Since(start)
	if sample.TimedOut {
		sample.Runtime = timeout
	}
	sample.Seeks = p.Stats().Seeks
	return sample, nil
}

// pearson computes the correlation between log10(estimate) and runtime.
func pearson(samples []OrderSample) float64 {
	if len(samples) < 2 {
		return 0
	}
	xs := make([]float64, len(samples))
	ys := make([]float64, len(samples))
	for i, s := range samples {
		xs[i] = math.Log10(s.Estimate + 1)
		ys[i] = float64(s.Runtime)
	}
	mx, my := mean(xs), mean(ys)
	var num, dx, dy float64
	for i := range xs {
		num += (xs[i] - mx) * (ys[i] - my)
		dx += (xs[i] - mx) * (xs[i] - mx)
		dy += (ys[i] - my) * (ys[i] - my)
	}
	if dx == 0 || dy == 0 {
		return 0
	}
	return num / math.Sqrt(dx*dy)
}

func mean(v []float64) float64 {
	s := 0.0
	for _, x := range v {
		s += x
	}
	return s / float64(len(v))
}

// Render prints the study: the Table-7 row plus the Figure-12 scatter.
func (o *OrderStudy) Render(w io.Writer) {
	fmt.Fprintf(w, "%s: variable-order study (Table 7 / Figure 12)\n", o.Query)
	fmt.Fprintf(w, "average runtime over %d random orders: %v\n", len(o.Samples), o.AvgRandom.Round(time.Microsecond))
	fmt.Fprintf(w, "runtime with the cost model's best order: %v (estimate %.3g)\n",
		o.Best.Runtime.Round(time.Microsecond), o.Best.Estimate)
	fmt.Fprintf(w, "correlation(log est, runtime) = %.3f\n", o.Correlation)
	fmt.Fprintf(w, "%-30s %14s %14s %12s\n", "order", "estimate", "runtime", "seeks")
	for _, s := range o.Samples {
		suffix := ""
		if s.TimedOut {
			suffix = " (timeout)"
		}
		fmt.Fprintf(w, "%-30s %14.4g %14v %12d%s\n", fmt.Sprint(s.Order), s.Estimate, s.Runtime.Round(time.Microsecond), s.Seeks, suffix)
	}
}
