package fault

import (
	"context"
	"fmt"
	"time"

	"parajoin/internal/engine"
	"parajoin/internal/rel"
)

// Wrap interposes the injector on a transport: Send, CloseSend, and Recv
// consult the plan before delegating. Injected errors wrap both ErrInjected
// and engine.ErrTransport, so the query-level recovery path classifies them
// as retryable — exactly like the real network failures they stand in for.
//
// The wrapper forwards TransportStats and ReleaseEpoch when the inner
// transport supports them, so metering and epoch cleanup see through it.
func Wrap(t engine.Transport, inj *Injector) engine.Transport {
	return &transport{inner: t, inj: inj}
}

type transport struct {
	inner engine.Transport
	inj   *Injector
}

// wireErr upgrades an injected fault to a transport-layer error.
func wireErr(err error) error {
	if err == nil {
		return nil
	}
	return fmt.Errorf("%w: %w", engine.ErrTransport, err)
}

func (t *transport) Send(ctx context.Context, exchangeID, src, dst int, batch []rel.Tuple) error {
	delay, err := t.inj.Send(engine.PlanExchangeID(exchangeID), src)
	if delay > 0 {
		timer := time.NewTimer(delay)
		select {
		case <-timer.C:
		case <-ctx.Done():
			timer.Stop()
			return ctx.Err()
		}
	}
	if err != nil {
		return wireErr(err)
	}
	return t.inner.Send(ctx, exchangeID, src, dst, batch)
}

func (t *transport) CloseSend(ctx context.Context, exchangeID, src int) error {
	if err := t.inj.CloseSend(engine.PlanExchangeID(exchangeID), src); err != nil {
		return wireErr(err)
	}
	return t.inner.CloseSend(ctx, exchangeID, src)
}

func (t *transport) Recv(ctx context.Context, exchangeID, dst int) ([]rel.Tuple, bool, error) {
	if err := t.inj.Recv(engine.PlanExchangeID(exchangeID), dst); err != nil {
		return nil, false, wireErr(err)
	}
	return t.inner.Recv(ctx, exchangeID, dst)
}

func (t *transport) Close() error { return t.inner.Close() }

// TransportStats implements engine.TransportMeter by delegation (zero when
// the inner transport doesn't meter).
func (t *transport) TransportStats() engine.TransportStats {
	if m, ok := t.inner.(engine.TransportMeter); ok {
		return m.TransportStats()
	}
	return engine.TransportStats{}
}

// ReleaseEpoch implements engine.EpochReleaser by delegation.
func (t *transport) ReleaseEpoch(epoch int64) {
	if r, ok := t.inner.(engine.EpochReleaser); ok {
		r.ReleaseEpoch(epoch)
	}
}
