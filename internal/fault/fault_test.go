package fault

import (
	"context"
	"errors"
	"testing"
	"time"

	"parajoin/internal/engine"
	"parajoin/internal/rel"
)

func TestParsePlanRoundTrip(t *testing.T) {
	spec := "seed=42;drop:exchange=0,worker=1,nth=3;stall:prob=0.01,delay=5ms;crash:worker=2,nth=1"
	p, err := ParsePlan(spec)
	if err != nil {
		t.Fatalf("ParsePlan: %v", err)
	}
	if p.Seed != 42 || len(p.Rules) != 3 {
		t.Fatalf("got seed=%d rules=%d", p.Seed, len(p.Rules))
	}
	want := []Rule{
		{Kind: KindDrop, Exchange: 0, Worker: 1, Nth: 3},
		{Kind: KindStall, Exchange: -1, Worker: -1, Prob: 0.01, Delay: 5 * time.Millisecond},
		{Kind: KindCrash, Exchange: -1, Worker: 2, Nth: 1},
	}
	for i, r := range p.Rules {
		if r != want[i] {
			t.Errorf("rule %d: got %+v, want %+v", i, r, want[i])
		}
	}
	// String renders back into the grammar; reparsing must agree.
	p2, err := ParsePlan(p.String())
	if err != nil {
		t.Fatalf("reparse %q: %v", p.String(), err)
	}
	if p2.Seed != p.Seed || len(p2.Rules) != len(p.Rules) {
		t.Fatalf("round trip changed the plan: %q vs %q", p.String(), p2.String())
	}
	for i := range p.Rules {
		if p.Rules[i] != p2.Rules[i] {
			t.Errorf("round trip rule %d: %+v vs %+v", i, p.Rules[i], p2.Rules[i])
		}
	}
}

func TestParsePlanRejects(t *testing.T) {
	for _, spec := range []string{
		"",                           // no rules
		"seed=1",                     // no rules
		"explode:nth=1",              // unknown kind
		"drop:nth=1,prob=0.5",        // nth xor prob
		"drop",                       // neither nth nor prob
		"drop:prob=1.5",              // prob out of range
		"stall:nth=1",                // stall needs delay
		"drop:nth=1,delay=5ms",       // delay on non-stall
		"drop:nth=-2",                // negative nth
		"drop:nth=1,count=-1",        // negative count
		"drop:nth=1,banana=2",        // unknown parameter
		"seed=banana;drop:nth=1",     // bad seed
		"drop:nth=1;stall:delay=x1h", // bad duration
	} {
		if _, err := ParsePlan(spec); err == nil {
			t.Errorf("ParsePlan(%q) accepted a bad spec", spec)
		}
	}
}

func TestNthFiresOncePerStream(t *testing.T) {
	p := &Plan{Seed: 1, Rules: []Rule{{Kind: KindDrop, Exchange: -1, Worker: 0, Nth: 2}}}
	inj := p.NewInjector()
	// Stream (exchange 0, worker 0): call 2 fails, calls 1 and 3+ succeed.
	for n := 1; n <= 5; n++ {
		_, err := inj.Send(0, 0)
		if (n == 2) != (err != nil) {
			t.Errorf("exchange 0 call %d: err=%v", n, err)
		}
	}
	// A different exchange is a different stream with its own counter.
	for n := 1; n <= 3; n++ {
		_, err := inj.Send(7, 0)
		if (n == 2) != (err != nil) {
			t.Errorf("exchange 7 call %d: err=%v", n, err)
		}
	}
	// Worker 1 never matches.
	for n := 1; n <= 3; n++ {
		if _, err := inj.Send(0, 1); err != nil {
			t.Errorf("worker 1 call %d unexpectedly faulted: %v", n, err)
		}
	}
	if got := inj.Injected()[KindDrop]; got != 2 {
		t.Errorf("drops fired = %d, want 2", got)
	}
}

func TestNthCountWindow(t *testing.T) {
	p := &Plan{Seed: 1, Rules: []Rule{{Kind: KindDrop, Exchange: -1, Worker: -1, Nth: 2, Count: 3}}}
	inj := p.NewInjector()
	for n := 1; n <= 6; n++ {
		_, err := inj.Send(0, 0)
		want := n >= 2 && n <= 4
		if want != (err != nil) {
			t.Errorf("call %d: err=%v, want fault=%v", n, err, want)
		}
	}
}

func TestProbDeterministicPerSeed(t *testing.T) {
	plan := func(seed int64) *Plan {
		return &Plan{Seed: seed, Rules: []Rule{{Kind: KindDrop, Exchange: -1, Worker: -1, Prob: 0.3}}}
	}
	record := func(p *Plan) []bool {
		inj := p.NewInjector()
		out := make([]bool, 200)
		for n := range out {
			_, err := inj.Send(3, 1)
			out[n] = err != nil
		}
		return out
	}
	a, b := record(plan(99)), record(plan(99))
	fires := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at call %d", i)
		}
		if a[i] {
			fires++
		}
	}
	if fires == 0 || fires == len(a) {
		t.Fatalf("prob=0.3 fired %d/%d times — not probabilistic", fires, len(a))
	}
	c := record(plan(100))
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds produced identical decisions")
	}
}

func TestCrashAndRecvKinds(t *testing.T) {
	p, err := ParsePlan("seed=5;crash:worker=1,nth=1;recv-err:worker=2,nth=1")
	if err != nil {
		t.Fatal(err)
	}
	inj := p.NewInjector()
	if err := inj.CloseSend(0, 0); err != nil {
		t.Errorf("worker 0 close faulted: %v", err)
	}
	if err := inj.CloseSend(0, 1); err == nil {
		t.Error("worker 1 close did not fault")
	} else if !errors.Is(err, ErrInjected) {
		t.Errorf("crash error %v does not wrap ErrInjected", err)
	}
	if err := inj.Recv(0, 1); err != nil {
		t.Errorf("worker 1 recv faulted: %v", err)
	}
	if err := inj.Recv(0, 2); err == nil {
		t.Error("worker 2 recv did not fault")
	}
}

// memTransport-backed wrapper: injected errors must classify as retryable
// transport failures and metering/epoch release must see through the
// wrapper.
func TestWrapTransport(t *testing.T) {
	inner := engine.NewMemTransport(2)
	p := &Plan{Seed: 1, Rules: []Rule{
		{Kind: KindDrop, Exchange: -1, Worker: 0, Nth: 2},
		{Kind: KindStall, Exchange: -1, Worker: 1, Nth: 1, Delay: time.Millisecond},
	}}
	inj := p.NewInjector()
	tr := Wrap(inner, inj)
	ctx := context.Background()
	batch := []rel.Tuple{{1, 2}}

	if err := tr.Send(ctx, 0, 0, 1, batch); err != nil {
		t.Fatalf("first send: %v", err)
	}
	err := tr.Send(ctx, 0, 0, 1, batch)
	if err == nil {
		t.Fatal("second send did not fault")
	}
	if !errors.Is(err, engine.ErrTransport) || !errors.Is(err, ErrInjected) {
		t.Fatalf("injected error %v must wrap engine.ErrTransport and ErrInjected", err)
	}
	if !engine.Retryable(err) {
		t.Fatalf("injected error %v must be retryable", err)
	}

	// Stall delays but delivers.
	start := time.Now()
	if err := tr.Send(ctx, 0, 1, 1, batch); err != nil {
		t.Fatalf("stalled send: %v", err)
	}
	if d := time.Since(start); d < time.Millisecond {
		t.Errorf("stall took %v, want >= 1ms", d)
	}

	// Metering sees through the wrapper: 2 delivered batches.
	st := tr.(engine.TransportMeter).TransportStats()
	if st.BatchesSent != 2 {
		t.Errorf("BatchesSent = %d, want 2 (dropped send must not count)", st.BatchesSent)
	}

	// Epoch release reaches the inner transport.
	tr.(engine.EpochReleaser).ReleaseEpoch(0)
	if n := inner.QueueCount(); n != 0 {
		t.Errorf("QueueCount after ReleaseEpoch = %d, want 0", n)
	}
}

// A stalled send aborts promptly when its context dies mid-stall.
func TestStallRespectsContext(t *testing.T) {
	inner := engine.NewMemTransport(2)
	p := &Plan{Seed: 1, Rules: []Rule{{Kind: KindStall, Exchange: -1, Worker: -1, Nth: 1, Delay: time.Hour}}}
	tr := Wrap(inner, p.NewInjector())
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := tr.Send(ctx, 0, 0, 1, []rel.Tuple{{1}})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	if time.Since(start) > time.Second {
		t.Fatalf("stall ignored the dying context")
	}
}
