package fault

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Kind is a fault category.
type Kind string

// The fault kinds an Injector can produce.
const (
	// KindDrop fails a Send — the wire analogue of a dropped connection or
	// a write into a dead peer.
	KindDrop Kind = "drop"
	// KindRecvErr fails a Recv on the consuming worker.
	KindRecvErr Kind = "recv-err"
	// KindStall delays a Send by the rule's Delay — a latency spike or a
	// straggler link, not an error.
	KindStall Kind = "stall"
	// KindCrash fails a CloseSend — the worker "dies at the barrier" after
	// producing data but before announcing end-of-stream, the classic
	// partial-failure the paper's single-round model makes recoverable.
	KindCrash Kind = "crash"
)

// Rule selects a stream of transport calls and decides which of them fault.
// A stream is the sequence of matching calls with one specific (exchange,
// worker) pair; call numbers count per stream, so "nth=2" means "the second
// send this worker makes on this exchange", deterministically, regardless
// of goroutine interleaving across streams.
type Rule struct {
	// Kind is the fault to inject.
	Kind Kind
	// Exchange selects a plan-local exchange id; -1 (the default in
	// ParsePlan) matches every exchange.
	Exchange int
	// Worker selects the calling worker — the producer for drop/stall/
	// crash, the consumer for recv-err; -1 matches every worker.
	Worker int
	// Nth, when > 0, fires on the nth matching call of each stream (1-based)
	// and the Count-1 calls after it. When 0 the rule is probabilistic.
	Nth int
	// Prob, used when Nth == 0, is the per-call firing probability, decided
	// by a pure hash of (seed, rule, exchange, worker, n).
	Prob float64
	// Count caps firings per stream: Nth rules default to 1, probabilistic
	// rules to unlimited.
	Count int
	// Delay is the stall duration (KindStall only).
	Delay time.Duration
}

func (r Rule) String() string {
	var b strings.Builder
	b.WriteString(string(r.Kind))
	sep := ":"
	field := func(k, v string) {
		b.WriteString(sep)
		sep = ","
		b.WriteString(k + "=" + v)
	}
	if r.Exchange >= 0 {
		field("exchange", strconv.Itoa(r.Exchange))
	}
	if r.Worker >= 0 {
		field("worker", strconv.Itoa(r.Worker))
	}
	if r.Nth > 0 {
		field("nth", strconv.Itoa(r.Nth))
	}
	if r.Prob > 0 {
		field("prob", strconv.FormatFloat(r.Prob, 'g', -1, 64))
	}
	if r.Count > 0 {
		field("count", strconv.Itoa(r.Count))
	}
	if r.Delay > 0 {
		field("delay", r.Delay.String())
	}
	return b.String()
}

// Plan is a seeded set of fault rules. The zero Plan injects nothing.
type Plan struct {
	// Seed drives every probabilistic decision; two injectors built from
	// equal plans make identical choices.
	Seed  int64
	Rules []Rule
}

// String renders the plan in the spec grammar ParsePlan accepts.
func (p *Plan) String() string {
	parts := []string{fmt.Sprintf("seed=%d", p.Seed)}
	for _, r := range p.Rules {
		parts = append(parts, r.String())
	}
	return strings.Join(parts, ";")
}

// ParsePlan parses a fault-plan spec of semicolon-separated clauses:
//
//	seed=42;drop:exchange=0,worker=1,nth=3;stall:prob=0.01,delay=5ms;crash:worker=2,nth=1
//
// Each clause is either "seed=N" or "<kind>:<field>=<value>,...". Fields are
// exchange, worker, nth, count (integers), prob (float in (0,1]), and delay
// (a Go duration). Omitted exchange/worker match everything.
func ParsePlan(spec string) (*Plan, error) {
	p := &Plan{}
	for _, clause := range strings.Split(spec, ";") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		if v, ok := strings.CutPrefix(clause, "seed="); ok {
			seed, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("fault: bad seed %q: %v", v, err)
			}
			p.Seed = seed
			continue
		}
		kind, params, _ := strings.Cut(clause, ":")
		r := Rule{Kind: Kind(kind), Exchange: -1, Worker: -1}
		switch r.Kind {
		case KindDrop, KindRecvErr, KindStall, KindCrash:
		default:
			return nil, fmt.Errorf("fault: unknown kind %q (want drop, recv-err, stall, or crash)", kind)
		}
		if params != "" {
			for _, kv := range strings.Split(params, ",") {
				key, val, ok := strings.Cut(strings.TrimSpace(kv), "=")
				if !ok {
					return nil, fmt.Errorf("fault: %s: parameter %q is not key=value", kind, kv)
				}
				var err error
				switch key {
				case "exchange":
					r.Exchange, err = strconv.Atoi(val)
				case "worker":
					r.Worker, err = strconv.Atoi(val)
				case "nth":
					r.Nth, err = strconv.Atoi(val)
				case "count":
					r.Count, err = strconv.Atoi(val)
				case "prob":
					r.Prob, err = strconv.ParseFloat(val, 64)
				case "delay":
					r.Delay, err = time.ParseDuration(val)
				default:
					return nil, fmt.Errorf("fault: %s: unknown parameter %q", kind, key)
				}
				if err != nil {
					return nil, fmt.Errorf("fault: %s: bad %s %q: %v", kind, key, val, err)
				}
			}
		}
		if err := validate(r); err != nil {
			return nil, err
		}
		p.Rules = append(p.Rules, r)
	}
	if len(p.Rules) == 0 {
		return nil, errors.New("fault: plan has no rules")
	}
	return p, nil
}

func validate(r Rule) error {
	switch {
	case r.Nth < 0:
		return fmt.Errorf("fault: %s: nth must be >= 1, got %d", r.Kind, r.Nth)
	case r.Nth > 0 && r.Prob != 0:
		return fmt.Errorf("fault: %s: nth and prob are mutually exclusive", r.Kind)
	case r.Nth == 0 && (r.Prob <= 0 || r.Prob > 1):
		return fmt.Errorf("fault: %s: need nth >= 1 or prob in (0,1], got prob=%g", r.Kind, r.Prob)
	case r.Kind == KindStall && r.Delay <= 0:
		return fmt.Errorf("fault: stall needs delay > 0")
	case r.Kind != KindStall && r.Delay != 0:
		return fmt.Errorf("fault: %s: delay applies to stall only", r.Kind)
	case r.Count < 0:
		return fmt.Errorf("fault: %s: count must be >= 0, got %d", r.Kind, r.Count)
	}
	return nil
}

// NewInjector builds an injector evaluating this plan. Each injector keeps
// its own per-stream call counters, so one plan can drive several
// independent clusters.
func (p *Plan) NewInjector() *Injector {
	return &Injector{
		plan:  p,
		calls: make(map[streamKey]int64),
		fired: make(map[streamKey]int64),
		stats: make(map[Kind]int64),
	}
}

// streamKey identifies one rule's call stream: matching calls with the same
// (exchange, worker) count together.
type streamKey struct {
	rule     int
	exchange int
	worker   int
}

// Injector evaluates a Plan against transport calls. Safe for concurrent
// use; decisions are deterministic per stream (see Rule).
type Injector struct {
	plan *Plan

	mu    sync.Mutex
	calls map[streamKey]int64
	fired map[streamKey]int64
	stats map[Kind]int64
}

// ErrInjected marks a synthetic failure produced by an Injector. Transport
// wrappers additionally wrap it in engine.ErrTransport so the recovery
// classifier treats injected faults exactly like real ones.
var ErrInjected = errors.New("fault: injected")

// splitmix64 is the finalizer of the SplitMix64 generator — a cheap, high-
// quality mixing function; used here as a stateless hash so probabilistic
// decisions need no shared generator state.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// roll is the deterministic coin flip: uniform in [0,1) as a pure function
// of the plan seed and the call's stream coordinates.
func (i *Injector) roll(k streamKey, n int64) float64 {
	h := splitmix64(uint64(i.plan.Seed))
	h = splitmix64(h ^ uint64(k.rule+1))
	h = splitmix64(h ^ uint64(k.exchange+1))
	h = splitmix64(h ^ uint64(k.worker+1))
	h = splitmix64(h ^ uint64(n))
	return float64(h>>11) / (1 << 53)
}

// decide runs one call with coordinates (exchange, worker) past every rule
// of the wanted kinds and returns the rules that fire, in plan order.
func (i *Injector) decide(exchange, worker int, kinds ...Kind) []Rule {
	var out []Rule
	i.mu.Lock()
	defer i.mu.Unlock()
	for ri, r := range i.plan.Rules {
		wanted := false
		for _, k := range kinds {
			wanted = wanted || r.Kind == k
		}
		if !wanted {
			continue
		}
		if r.Exchange >= 0 && r.Exchange != exchange {
			continue
		}
		if r.Worker >= 0 && r.Worker != worker {
			continue
		}
		k := streamKey{ri, exchange, worker}
		n := i.calls[k] + 1
		i.calls[k] = n
		fire := false
		if r.Nth > 0 {
			count := int64(r.Count)
			if count == 0 {
				count = 1
			}
			fire = n >= int64(r.Nth) && n < int64(r.Nth)+count
		} else {
			fire = i.roll(k, n) < r.Prob
			if fire && r.Count > 0 && i.fired[k] >= int64(r.Count) {
				fire = false
			}
		}
		if fire {
			i.fired[k]++
			i.stats[r.Kind]++
			injectedTotal[r.Kind].Add(1)
			out = append(out, r)
		}
	}
	return out
}

// Send evaluates drop and stall rules for one Send call by worker src on a
// plan-local exchange. It returns the accumulated stall delay (0 when none
// fired) and the injected error (nil when none fired); both can be nonzero
// at once — the wrapper stalls first, then fails.
func (i *Injector) Send(exchange, src int) (time.Duration, error) {
	var delay time.Duration
	var err error
	for _, r := range i.decide(exchange, src, KindDrop, KindStall) {
		switch r.Kind {
		case KindStall:
			delay += r.Delay
		case KindDrop:
			if err == nil {
				err = fmt.Errorf("%w: drop (exchange %d, worker %d)", ErrInjected, exchange, src)
			}
		}
	}
	return delay, err
}

// CloseSend evaluates crash rules for one CloseSend call — the worker
// crashing at the barrier instead of announcing end-of-stream.
func (i *Injector) CloseSend(exchange, src int) error {
	for _, r := range i.decide(exchange, src, KindCrash) {
		_ = r
		return fmt.Errorf("%w: crash at barrier (exchange %d, worker %d)", ErrInjected, exchange, src)
	}
	return nil
}

// Recv evaluates recv-err rules for one Recv call by consumer dst.
func (i *Injector) Recv(exchange, dst int) error {
	for _, r := range i.decide(exchange, dst, KindRecvErr) {
		_ = r
		return fmt.Errorf("%w: recv error (exchange %d, worker %d)", ErrInjected, exchange, dst)
	}
	return nil
}

// Injected reports how many faults fired, by kind.
func (i *Injector) Injected() map[Kind]int64 {
	i.mu.Lock()
	defer i.mu.Unlock()
	out := make(map[Kind]int64, len(i.stats))
	for k, v := range i.stats {
		out[k] = v
	}
	return out
}

// InjectedTotal reports the total number of faults fired.
func (i *Injector) InjectedTotal() int64 {
	i.mu.Lock()
	defer i.mu.Unlock()
	var n int64
	for _, v := range i.stats {
		n += v
	}
	return n
}

// String summarizes the injector's activity ("drop=2 stall=17").
func (i *Injector) String() string {
	counts := i.Injected()
	kinds := make([]string, 0, len(counts))
	for k := range counts {
		kinds = append(kinds, string(k))
	}
	sort.Strings(kinds)
	parts := make([]string, len(kinds))
	for j, k := range kinds {
		parts[j] = fmt.Sprintf("%s=%d", k, counts[Kind(k)])
	}
	if len(parts) == 0 {
		return "no faults injected"
	}
	return strings.Join(parts, " ")
}
