// Package fault is parajoin's deterministic fault-injection subsystem. A
// Plan is a seeded list of rules — connection drops, receive errors,
// latency stalls, worker crash-at-barrier events — selectable by exchange,
// worker, and nth matching call. An Injector evaluates the plan against a
// stream of transport operations with no wall-clock or global randomness in
// the hot path: every probabilistic decision is a pure hash of (seed, rule,
// exchange, worker, call number), so the same plan against the same
// execution produces the same faults, run after run, process after process.
// Per-stream call counters persist across re-executions, which is what
// makes single-retry soak tests deterministic.
//
// Plans wrap a cluster's Transport (see Wrap in transport.go) and are
// usable from three entry points: engine/server tests, `benchrunner -chaos
// <spec>`, and the `parajoind -fault-plan <spec>` dev flag. The plan
// grammar, the retry loop the injected faults exercise, and the
// determinism contract they rest on (a re-executed query must reproduce
// identical rows — including under intra-worker parallel joins) are
// specified in DESIGN.md's "Fault tolerance" and "Intra-worker
// parallelism" sections.
package fault
