package fault

import "parajoin/internal/metrics"

// injectedTotal counts fired faults process-wide by kind, alongside each
// injector's private stats — chaos runs show up on /metrics without the
// caller having to poll Injected().
var injectedTotal = map[Kind]*metrics.Counter{
	KindDrop:    injectedCounter(KindDrop),
	KindRecvErr: injectedCounter(KindRecvErr),
	KindStall:   injectedCounter(KindStall),
	KindCrash:   injectedCounter(KindCrash),
}

func injectedCounter(k Kind) *metrics.Counter {
	return metrics.Default.Counter("parajoin_faults_injected_total",
		"Faults fired by the deterministic injector.",
		metrics.Label{Name: "kind", Value: string(k)})
}
