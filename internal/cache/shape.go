package cache

import (
	"strconv"
	"strings"

	"parajoin/internal/core"
)

// Shape is a query's normalized form: the canonical text (Key), the actual
// variables behind the canonical indexes (Vars, first-appearance order, so
// Vars[i] is the variable rendered as v<i>), and the constants lifted into
// positional slots (Args, scan order, so Args[k] is the value rendered as
// $<k>).
type Shape struct {
	Key  string
	Vars []core.Var
	Args []int64
}

// Normalize canonicalizes q. Two queries that differ only in variable
// naming and constant values produce the same Key; a query with unbound
// "?" parameters produces the same Key as its bound forms (parameter slots
// carry a zero in Args, so only fully bound queries may key the result
// cache).
func Normalize(q *core.Query) Shape {
	varIdx := make(map[core.Var]int)
	var vars []core.Var
	var args []int64

	var b strings.Builder
	writeVar := func(v core.Var) {
		i, ok := varIdx[v]
		if !ok {
			i = len(vars)
			varIdx[v] = i
			vars = append(vars, v)
		}
		b.WriteByte('v')
		b.WriteString(strconv.Itoa(i))
	}
	writeTerm := func(t core.Term) {
		if t.IsVar {
			writeVar(t.Var)
			return
		}
		b.WriteByte('$')
		b.WriteString(strconv.Itoa(len(args)))
		if t.IsParam {
			args = append(args, 0)
		} else {
			args = append(args, t.Const)
		}
	}

	// Atoms first: they assign the canonical variable indexes the head and
	// filters refer to.
	for i, a := range q.Atoms {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(a.Relation)
		b.WriteByte('(')
		for j, t := range a.Terms {
			if j > 0 {
				b.WriteByte(';')
			}
			writeTerm(t)
		}
		b.WriteByte(')')
	}
	body := b.String()
	b.Reset()

	b.WriteByte('(')
	for i, h := range q.HeadVars() {
		if i > 0 {
			b.WriteByte(';')
		}
		writeVar(h)
	}
	b.WriteString("):-")
	b.WriteString(body)
	for _, f := range q.Filters {
		b.WriteByte(',')
		writeVar(f.Left)
		b.WriteString(f.Op.String())
		writeTerm(f.Right)
	}
	return Shape{Key: b.String(), Vars: vars, Args: args}
}

// PlanKey is the plan-cache key for this shape under the requested
// strategy ("auto" resolves inside the entry, so an auto request and the
// explicit strategy it resolves to are distinct entries).
func (s Shape) PlanKey(strategy string) string {
	return s.Key + "|s=" + strategy
}

// ResultKey is the result-cache key for this shape: it adds the operation
// (run/count), the requested strategy (plans — and therefore row order —
// differ across strategies), the actual variable names (output column
// names must replay byte-identically), and the lifted constant values.
func (s Shape) ResultKey(op, strategy string) string {
	var b strings.Builder
	b.WriteString(s.Key)
	b.WriteString("|op=")
	b.WriteString(op)
	b.WriteString("|s=")
	b.WriteString(strategy)
	b.WriteString("|vars=")
	for i, v := range s.Vars {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(string(v))
	}
	b.WriteString("|args=")
	for i, a := range s.Args {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.FormatInt(a, 10))
	}
	return b.String()
}

// VarIndex maps the shape's variables back to their canonical indexes.
func (s Shape) VarIndex() map[core.Var]int {
	m := make(map[core.Var]int, len(s.Vars))
	for i, v := range s.Vars {
		m[v] = i
	}
	return m
}
