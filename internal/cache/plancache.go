package cache

import (
	"container/list"
	"sync"

	"parajoin/internal/core"
	"parajoin/internal/planner"
	"parajoin/internal/shares"
)

// PlanEntry is one cached set of optimizer decisions, stored in
// variable-name-independent form: HCVars and Order hold canonical variable
// indexes into the shape's Vars, JoinOrder holds atom indexes (stable
// under shape by construction).
type PlanEntry struct {
	// Strategy is the resolved strategy name — for an "auto" request this
	// is what Auto picked, so a hit skips the resolution estimate too.
	Strategy string
	// HCVars/HCDims are the HyperCube share configuration.
	HCVars []int
	HCDims []int
	// Order/OrderCost are the Tributary variable order and its cost.
	Order     []int
	OrderCost float64
	// JoinOrder is the greedy atom order for binary-join trees.
	JoinOrder []int
}

// NewPlanEntry captures a planner result's decisions against the shape's
// canonical variable indexes. Variables the index does not know (which
// would indicate a shape/query mismatch) drop that decision rather than
// poison the entry.
func NewPlanEntry(strategy string, res *planner.Result, varIdx map[core.Var]int) *PlanEntry {
	e := &PlanEntry{Strategy: strategy}
	if len(res.HC.Vars) > 0 {
		hcVars := make([]int, 0, len(res.HC.Vars))
		for _, v := range res.HC.Vars {
			i, ok := varIdx[v]
			if !ok {
				hcVars = nil
				break
			}
			hcVars = append(hcVars, i)
		}
		if hcVars != nil {
			e.HCVars = hcVars
			e.HCDims = append([]int(nil), res.HC.Dims...)
		}
	}
	if len(res.Order) > 0 {
		ord := make([]int, 0, len(res.Order))
		for _, v := range res.Order {
			i, ok := varIdx[v]
			if !ok {
				ord = nil
				break
			}
			ord = append(ord, i)
		}
		if ord != nil {
			e.Order = ord
			e.OrderCost = res.OrderCost
		}
	}
	e.JoinOrder = append([]int(nil), res.JoinOrder...)
	return e
}

// Hints rebinds the entry's canonical decisions to a live query's
// variables (vars is the shape's first-appearance list for that query).
// Out-of-range indexes yield nil — the planner then re-optimizes normally.
func (e *PlanEntry) Hints(vars []core.Var) *planner.Hints {
	h := &planner.Hints{OrderCost: e.OrderCost}
	if len(e.HCVars) > 0 && len(e.HCVars) == len(e.HCDims) {
		cfg := shares.Config{Vars: make([]core.Var, len(e.HCVars)), Dims: append([]int(nil), e.HCDims...)}
		for i, vi := range e.HCVars {
			if vi < 0 || vi >= len(vars) {
				return nil
			}
			cfg.Vars[i] = vars[vi]
		}
		h.HC = &cfg
	}
	if len(e.Order) > 0 {
		h.Order = make([]core.Var, len(e.Order))
		for i, vi := range e.Order {
			if vi < 0 || vi >= len(vars) {
				return nil
			}
			h.Order[i] = vars[vi]
		}
	}
	h.JoinOrder = append([]int(nil), e.JoinOrder...)
	return h
}

// Counters is a point-in-time snapshot of one cache's activity.
type Counters struct {
	Hits      int64
	Misses    int64
	Evictions int64
	// Entries is the current entry count; Tuples and Bytes are the result
	// cache's current residency (zero for the plan cache).
	Entries int
	Tuples  int64
	Bytes   int64
}

// PlanCache is an LRU cache of optimizer decisions keyed by
// Shape.PlanKey. Entries are epoch-stamped: a Get with a newer catalog
// epoch treats the entry as dead and evicts it.
type PlanCache struct {
	mu      sync.Mutex
	max     int
	ll      *list.List
	items   map[string]*list.Element
	hits    int64
	misses  int64
	evicted int64
}

type planItem struct {
	key   string
	epoch int64
	entry *PlanEntry
}

// NewPlanCache creates a plan cache holding at most max entries (max <= 0
// takes a default of 256).
func NewPlanCache(max int) *PlanCache {
	if max <= 0 {
		max = 256
	}
	return &PlanCache{max: max, ll: list.New(), items: make(map[string]*list.Element)}
}

// Get returns the entry for key computed at the given catalog epoch, or
// nil. A stale-epoch entry is evicted and reported as a miss.
func (c *PlanCache) Get(key string, epoch int64) *PlanEntry {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if ok {
		it := el.Value.(*planItem)
		if it.epoch == epoch {
			c.ll.MoveToFront(el)
			c.hits++
			planHits.Inc()
			return it.entry
		}
		c.removeLocked(el)
		c.evicted++
		planEvictions.Inc()
	}
	c.misses++
	planMisses.Inc()
	return nil
}

// Put stores an entry computed at the given catalog epoch, evicting the
// least recently used entry when full.
func (c *PlanCache) Put(key string, epoch int64, e *PlanEntry) {
	if e == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		it := el.Value.(*planItem)
		it.epoch, it.entry = epoch, e
		c.ll.MoveToFront(el)
		return
	}
	el := c.ll.PushFront(&planItem{key: key, epoch: epoch, entry: e})
	c.items[key] = el
	planEntries.Add(1)
	for c.ll.Len() > c.max {
		c.removeLocked(c.ll.Back())
		c.evicted++
		planEvictions.Inc()
	}
}

func (c *PlanCache) removeLocked(el *list.Element) {
	it := el.Value.(*planItem)
	c.ll.Remove(el)
	delete(c.items, it.key)
	planEntries.Add(-1)
}

// Counters snapshots the cache's activity.
func (c *PlanCache) Counters() Counters {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Counters{Hits: c.hits, Misses: c.misses, Evictions: c.evicted, Entries: c.ll.Len()}
}
