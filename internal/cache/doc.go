// Package cache implements the prepared-query caching layer: query shape
// normalization, a plan cache that replays optimizer decisions, and a
// result cache with load-epoch invalidation.
//
// # Shape normalization
//
// Normalize canonicalizes a query into a Shape: variables are renamed
// v0,v1,... in order of first appearance across the atoms, and every
// constant (and "?" parameter placeholder) is lifted into a positional
// slot $0,$1,... in scan order. The canonical text is the cache key, so an
// ad-hoc query E(x,5) and a prepared query E(x,?) executed with argument 5
// normalize to the same shape E(v0,$0) and share one plan-cache entry.
// The lifted constants come back as Shape.Args and, together with the
// shape, key the result cache.
//
// # Plan cache
//
// Physical plans embed their constants (selections are compiled in), so
// the plan cache does not store built plans. It stores the expensive
// optimizer *decisions* — HyperCube share configuration (the LP of
// Section 4), the Tributary variable order (the Section-5 search), the
// greedy atom order — in variable-name-independent form: canonical
// variable indexes. A hit rebinds them to the live query's variables as
// planner.Hints, and the planner rebuilds the cheap physical plan while
// skipping every search. Entries carry the catalog epoch they were
// computed at; a mutation makes them unreachable.
//
// # Result cache
//
// The result cache stores materialized answers keyed by (shape, actual
// variable names, operation, strategy, arguments) and the load epoch.
// Entries replay byte-identical rows (deep-copied on both insert and
// lookup, so callers can mutate freely). The cache is bounded by a tuple
// budget with LRU eviction; bytes are charged at the spill layer's
// convention of eight bytes per value. Runs under chaos fault injection,
// forced spilling, or EXPLAIN capture bypass the result cache — see the
// bypass rules in the parajoin package.
package cache
