package cache

import (
	"reflect"
	"testing"

	"parajoin/internal/core"
)

func parse(t *testing.T, rule string) *core.Query {
	t.Helper()
	q, err := core.ParseRule(rule, nil)
	if err != nil {
		t.Fatalf("parse %q: %v", rule, err)
	}
	return q
}

func TestNormalizeRenamingInvariant(t *testing.T) {
	a := Normalize(parse(t, "A(x,y) :- E(x,y), E(y,x), x >= 10"))
	b := Normalize(parse(t, "B(p,q) :- E(p,q), E(q,p), p >= 99"))
	if a.Key != b.Key {
		t.Fatalf("renamed queries got different keys:\n%s\n%s", a.Key, b.Key)
	}
	if a.Args[0] != 10 || b.Args[0] != 99 {
		t.Fatalf("lifted constants wrong: %v %v", a.Args, b.Args)
	}
	if !reflect.DeepEqual(a.Vars, []core.Var{"x", "y"}) || !reflect.DeepEqual(b.Vars, []core.Var{"p", "q"}) {
		t.Fatalf("shape vars wrong: %v %v", a.Vars, b.Vars)
	}
}

// An ad-hoc query with an inline constant and a prepared query with a "?"
// in the same position share one shape key — the whole point of lifting
// constants: they plan identically.
func TestNormalizeParamAndConstantShareKey(t *testing.T) {
	con := Normalize(parse(t, "A(x) :- E(x,5)"))
	par := Normalize(parse(t, "A(x) :- E(x,?)"))
	if con.Key != par.Key {
		t.Fatalf("constant and param forms got different keys:\n%s\n%s", con.Key, par.Key)
	}
	if con.Args[0] != 5 || par.Args[0] != 0 {
		t.Fatalf("args: constant %v, param %v", con.Args, par.Args)
	}
}

func TestNormalizeDistinguishesStructure(t *testing.T) {
	keys := map[string]string{}
	for _, rule := range []string{
		"A(x) :- E(x,5)",
		"A(x) :- E(5,x)",
		"A(x) :- E(x,x)",
		"A(x,y) :- E(x,y)",
		"A(x) :- E(x,y), E(y,x)",
		"A(x) :- E(x,5), x >= 3",
		"A(x) :- E(x,5), x > 3",
	} {
		s := Normalize(parse(t, rule))
		if prev, dup := keys[s.Key]; dup {
			t.Fatalf("distinct rules share a key:\n%s\n%s\n-> %s", prev, rule, s.Key)
		}
		keys[s.Key] = rule
	}
}

// Result keys must separate what plan keys deliberately merge: the actual
// argument values, the operation, the strategy, and the live variable
// names (column headers must replay byte-identically).
func TestResultKeySeparations(t *testing.T) {
	s1 := Normalize(parse(t, "A(x) :- E(x,5)"))
	s2 := Normalize(parse(t, "A(x) :- E(x,6)"))
	s3 := Normalize(parse(t, "A(y) :- E(y,5)"))
	if s1.PlanKey("auto") != s2.PlanKey("auto") {
		t.Fatal("different constants should share a plan key")
	}
	seen := map[string]bool{}
	for _, k := range []string{
		s1.ResultKey("run", "auto"),
		s2.ResultKey("run", "auto"),   // different argument
		s3.ResultKey("run", "auto"),   // different column name
		s1.ResultKey("count", "auto"), // different op
		s1.ResultKey("run", "hc_tj"),  // different strategy
	} {
		if seen[k] {
			t.Fatalf("result key collision: %s", k)
		}
		seen[k] = true
	}
}

func TestPlanCacheEpochInvalidation(t *testing.T) {
	c := NewPlanCache(8)
	c.Put("k", 1, &PlanEntry{Strategy: "hc_tj"})
	if e := c.Get("k", 1); e == nil || e.Strategy != "hc_tj" {
		t.Fatalf("same-epoch get: %+v", e)
	}
	if e := c.Get("k", 2); e != nil {
		t.Fatalf("stale-epoch entry served: %+v", e)
	}
	if e := c.Get("k", 1); e != nil {
		t.Fatal("stale entry must be evicted, not kept for its old epoch")
	}
	cs := c.Counters()
	if cs.Hits != 1 || cs.Misses != 2 || cs.Evictions != 1 || cs.Entries != 0 {
		t.Fatalf("counters: %+v", cs)
	}
}

func TestPlanCacheLRUEviction(t *testing.T) {
	c := NewPlanCache(2)
	c.Put("a", 1, &PlanEntry{Strategy: "a"})
	c.Put("b", 1, &PlanEntry{Strategy: "b"})
	c.Get("a", 1)                            // a is now most recent
	c.Put("c", 1, &PlanEntry{Strategy: "c"}) // evicts b
	if c.Get("b", 1) != nil {
		t.Fatal("b should have been evicted as least recently used")
	}
	if c.Get("a", 1) == nil || c.Get("c", 1) == nil {
		t.Fatal("a and c should have survived")
	}
}

func TestResultCacheCloneIsolation(t *testing.T) {
	c := NewResultCache(100)
	orig := &Result{Strategy: "hc_tj", Columns: []string{"x"}, Rows: [][]int64{{1}, {2}}}
	c.Put("k", 1, orig)
	orig.Rows[0][0] = 99 // caller keeps mutating its copy after Put

	got := c.Get("k", 1)
	if got.Rows[0][0] != 1 {
		t.Fatal("Put did not deep-copy: caller mutation reached the cache")
	}
	got.Rows[1][0] = 77 // and mutates what Get handed out

	again := c.Get("k", 1)
	if again.Rows[1][0] != 2 {
		t.Fatal("Get did not deep-copy: one caller's mutation reached the next")
	}
}

func TestResultCacheBudget(t *testing.T) {
	c := NewResultCache(3)
	rows := func(n int64) [][]int64 {
		out := make([][]int64, n)
		for i := range out {
			out[i] = []int64{int64(i)}
		}
		return out
	}
	c.Put("two", 1, &Result{Rows: rows(2)})
	c.Put("one", 1, &Result{Rows: rows(1)})
	if cs := c.Counters(); cs.Tuples != 3 || cs.Entries != 2 {
		t.Fatalf("residency: %+v", cs)
	}
	// A 4-tuple answer exceeds the whole budget: dropped, residents stay.
	c.Put("big", 1, &Result{Rows: rows(4)})
	if c.Get("big", 1) != nil {
		t.Fatal("over-budget entry was admitted")
	}
	if c.Get("two", 1) == nil || c.Get("one", 1) == nil {
		t.Fatal("over-budget Put evicted residents for nothing")
	}
	// A fitting answer evicts LRU entries until there is room.
	c.Get("two", 1) // "one" is now least recent
	c.Put("fresh", 1, &Result{Rows: rows(3)})
	if c.Get("one", 1) != nil || c.Get("two", 1) != nil {
		t.Fatal("LRU eviction should have cleared both residents")
	}
	if c.Get("fresh", 1) == nil {
		t.Fatal("fitting entry missing after eviction")
	}
}

func TestResultCacheCountsOccupyOneTuple(t *testing.T) {
	c := NewResultCache(2)
	c.Put("n1", 1, &Result{Count: 12345})
	c.Put("n2", 1, &Result{Count: 67890})
	if cs := c.Counters(); cs.Tuples != 2 || cs.Entries != 2 {
		t.Fatalf("count entries should cost one tuple each: %+v", cs)
	}
	if got := c.Get("n1", 1); got == nil || got.Count != 12345 || got.Rows != nil {
		t.Fatalf("count replay: %+v", got)
	}
}

// Hints must survive the canonical-index round trip: decisions recorded
// against one query's variables rebind onto a same-shape query with
// different names.
func TestPlanEntryHintsRebind(t *testing.T) {
	entry := &PlanEntry{Strategy: "hc_tj", HCVars: []int{0, 1}, HCDims: []int{2, 3}, Order: []int{1, 0}, OrderCost: 7}
	h := entry.Hints([]core.Var{"p", "q"})
	if h == nil || h.HC == nil {
		t.Fatal("hints missing")
	}
	if !reflect.DeepEqual(h.HC.Vars, []core.Var{"p", "q"}) || !reflect.DeepEqual(h.HC.Dims, []int{2, 3}) {
		t.Fatalf("HC rebind: %+v", h.HC)
	}
	if !reflect.DeepEqual(h.Order, []core.Var{"q", "p"}) || h.OrderCost != 7 {
		t.Fatalf("order rebind: %v %v", h.Order, h.OrderCost)
	}
	// An out-of-range index (shape drift) must disable hinting entirely.
	if bad := (&PlanEntry{Order: []int{5}}).Hints([]core.Var{"p"}); bad != nil {
		t.Fatalf("out-of-range hint not rejected: %+v", bad)
	}
}
