package cache

import (
	"container/list"
	"sync"
)

// Result is a cached query answer: materialized rows for a run, a scalar
// for a count (Rows nil). Strategy is the resolved execution strategy the
// answer was computed under, replayed into the hit's Stats.
type Result struct {
	Strategy string
	Columns  []string
	Rows     [][]int64
	Count    int64
}

// bytesPerValue matches the spill layer's encoding convention: every
// value is one fixed-width int64.
const bytesPerValue = 8

func (r *Result) tuples() int64 {
	if r.Rows == nil {
		return 1 // a count still occupies a slot
	}
	return int64(len(r.Rows))
}

func (r *Result) bytes() int64 {
	n := int64(len(r.Columns)) * bytesPerValue
	for _, row := range r.Rows {
		n += int64(len(row)) * bytesPerValue
	}
	if n == 0 {
		n = bytesPerValue
	}
	return n
}

// clone deep-copies the result so cache residents and caller-visible
// values never share row storage.
func (r *Result) clone() *Result {
	out := &Result{
		Strategy: r.Strategy,
		Columns:  append([]string(nil), r.Columns...),
		Count:    r.Count,
	}
	if r.Rows != nil {
		out.Rows = make([][]int64, len(r.Rows))
		for i, row := range r.Rows {
			out.Rows[i] = append([]int64(nil), row...)
		}
	}
	return out
}

// ResultCache is an LRU cache of materialized answers keyed by
// Shape.ResultKey, bounded by a total tuple budget. Entries are
// epoch-stamped like the plan cache's.
type ResultCache struct {
	mu      sync.Mutex
	budget  int64 // max resident tuples
	tuples  int64
	bytes   int64
	ll      *list.List
	items   map[string]*list.Element
	hits    int64
	misses  int64
	evicted int64
}

type resultItem struct {
	key    string
	epoch  int64
	result *Result
}

// NewResultCache creates a result cache holding at most budget tuples
// across all entries (budget <= 0 takes a default of 1Mi tuples).
func NewResultCache(budget int64) *ResultCache {
	if budget <= 0 {
		budget = 1 << 20
	}
	return &ResultCache{budget: budget, ll: list.New(), items: make(map[string]*list.Element)}
}

// Get returns a deep copy of the answer cached for key at the given
// catalog epoch, or nil. A stale-epoch entry is evicted and reported as a
// miss.
func (c *ResultCache) Get(key string, epoch int64) *Result {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if ok {
		it := el.Value.(*resultItem)
		if it.epoch == epoch {
			c.ll.MoveToFront(el)
			c.hits++
			resultHits.Inc()
			return it.result.clone()
		}
		c.removeLocked(el)
		c.evicted++
		resultEvictions.Inc()
	}
	c.misses++
	resultMisses.Inc()
	return nil
}

// Put stores a deep copy of the answer computed at the given catalog
// epoch. Answers larger than the whole budget are dropped; otherwise
// least-recently-used entries are evicted until the new resident fits.
func (c *ResultCache) Put(key string, epoch int64, r *Result) {
	if r == nil {
		return
	}
	r = r.clone()
	t, by := r.tuples(), r.bytes()
	c.mu.Lock()
	defer c.mu.Unlock()
	if t > c.budget {
		return
	}
	if el, ok := c.items[key]; ok {
		c.removeLocked(el)
	}
	for c.tuples+t > c.budget && c.ll.Len() > 0 {
		c.removeLocked(c.ll.Back())
		c.evicted++
		resultEvictions.Inc()
	}
	el := c.ll.PushFront(&resultItem{key: key, epoch: epoch, result: r})
	c.items[key] = el
	c.tuples += t
	c.bytes += by
	resultTuples.Add(t)
	resultBytes.Add(by)
}

func (c *ResultCache) removeLocked(el *list.Element) {
	it := el.Value.(*resultItem)
	c.ll.Remove(el)
	delete(c.items, it.key)
	t, by := it.result.tuples(), it.result.bytes()
	c.tuples -= t
	c.bytes -= by
	resultTuples.Add(-t)
	resultBytes.Add(-by)
}

// Counters snapshots the cache's activity and residency.
func (c *ResultCache) Counters() Counters {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Counters{
		Hits: c.hits, Misses: c.misses, Evictions: c.evicted,
		Entries: c.ll.Len(), Tuples: c.tuples, Bytes: c.bytes,
	}
}
