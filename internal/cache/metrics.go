package cache

import "parajoin/internal/metrics"

// Process-wide cache metrics on the default registry (served at /metrics).
// Counters aggregate across every cache instance in the process; the
// gauges track current residency via +/- deltas, so they also sum
// correctly across instances.
var (
	planHits = metrics.Default.Counter("parajoin_cache_plan_hits_total",
		"Plan-cache hits: queries that skipped share optimization and order search.")
	planMisses = metrics.Default.Counter("parajoin_cache_plan_misses_total",
		"Plan-cache misses: queries planned from scratch.")
	planEvictions = metrics.Default.Counter("parajoin_cache_plan_evictions_total",
		"Plan-cache evictions: LRU capacity plus stale-epoch invalidations.")
	planEntries = metrics.Default.Gauge("parajoin_cache_plan_entries",
		"Plan-cache resident entries.")

	resultHits = metrics.Default.Counter("parajoin_cache_result_hits_total",
		"Result-cache hits: queries answered without executing.")
	resultMisses = metrics.Default.Counter("parajoin_cache_result_misses_total",
		"Result-cache misses.")
	resultEvictions = metrics.Default.Counter("parajoin_cache_result_evictions_total",
		"Result-cache evictions: LRU tuple-budget pressure plus stale-epoch invalidations.")
	resultTuples = metrics.Default.Gauge("parajoin_cache_result_tuples",
		"Result-cache resident tuples.")
	resultBytes = metrics.Default.Gauge("parajoin_cache_result_bytes",
		"Result-cache resident bytes (8 bytes per value, the spill convention).")
)
