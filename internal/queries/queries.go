// Package queries defines the paper's eight benchmark queries (Q1–Q8 of
// Section 3 and Appendix A) over the synthetic Twitter and Freebase
// stand-ins, and bundles them with the generated data as a Workload.
package queries

import (
	"fmt"
	"sort"

	"parajoin/internal/core"
	"parajoin/internal/dataset"
	"parajoin/internal/rel"
)

// Workload is the paper's evaluation workload: the two datasets plus the
// eight queries, keyed "Q1".."Q8".
type Workload struct {
	Twitter *dataset.GraphConfig
	KB      *dataset.KB
	// Relations maps base relation names (as used in query atoms) to the
	// full relations.
	Relations map[string]*rel.Relation
	// Queries maps "Q1".."Q8" to the query definitions.
	Queries map[string]*core.Query
}

// New generates the workload. Pass dataset.DefaultTwitter() and
// dataset.DefaultKB() for the laptop-scale defaults.
func New(graph dataset.GraphConfig, kbCfg dataset.KBConfig) *Workload {
	twitter := dataset.Twitter(graph)
	kb := dataset.NewKB(kbCfg)

	w := &Workload{
		Twitter:   &graph,
		KB:        kb,
		Relations: map[string]*rel.Relation{"Twitter": twitter},
		Queries:   map[string]*core.Query{},
	}
	for _, r := range kb.Relations() {
		w.Relations[r.Name] = r
	}

	enc := kb.Dict
	w.Queries["Q1"] = core.MustParseRule(
		"Q1(x,y,z) :- Twitter(x,y), Twitter(y,z), Twitter(z,x)", nil)
	w.Queries["Q2"] = core.MustParseRule(
		"Q2(x,y,z,p) :- Twitter(x,y), Twitter(y,z), Twitter(z,p), Twitter(p,x), Twitter(x,z), Twitter(y,p)", nil)
	// Q3: all cast members of films starring both Joe Pesci and Robert De
	// Niro. Atom argument order follows the relation schemas
	// (ActorPerform(actor, perform), PerformFilm(perform, film)); the
	// paper's listing uses the same joins.
	w.Queries["Q3"] = core.MustParseRule(
		`Q3(cast) :- ObjectName(a1, "Joe Pesci"), ActorPerform(a1, p1), PerformFilm(p1, film), `+
			`ObjectName(a2, "Robert De Niro"), ActorPerform(a2, p2), PerformFilm(p2, film), `+
			`PerformFilm(p, film), ActorPerform(cast, p)`, enc)
	// Q4: pairs of actors co-starring in at least two different films — the
	// paper's cyclic 8-join query (f1 > f2 picks each unordered film pair
	// once).
	w.Queries["Q4"] = core.MustParseRule(
		"Q4(a1,a2) :- ActorPerform(a1,p1), PerformFilm(p1,f1), PerformFilm(p2,f1), ActorPerform(a2,p2), "+
			"ActorPerform(a2,p3), PerformFilm(p3,f2), PerformFilm(p4,f2), ActorPerform(a1,p4), f1>f2", nil)
	w.Queries["Q5"] = core.MustParseRule(
		"Q5(x,y,z,p) :- Twitter(x,y), Twitter(y,z), Twitter(z,p), Twitter(p,x)", nil)
	w.Queries["Q6"] = core.MustParseRule(
		"Q6(x,y,z,p) :- Twitter(x,y), Twitter(y,z), Twitter(z,p), Twitter(p,x), Twitter(x,z)", nil)
	w.Queries["Q7"] = core.MustParseRule(
		`Q7(a) :- ObjectName(aw, "The Academy Awards"), HonorAward(h, aw), HonorActor(h, a), HonorYear(h, y), y>=1990, y<2000`, enc)
	w.Queries["Q8"] = core.MustParseRule(
		"Q8(a,d) :- ActorPerform(a,p1), ActorPerform(a,p2), PerformFilm(p1,f1), PerformFilm(p2,f2), "+
			"DirectorFilm(d,f1), DirectorFilm(d,f2), f1>f2", nil)
	return w
}

// Names returns the query names in order Q1..Q8.
func (w *Workload) Names() []string {
	names := make([]string, 0, len(w.Queries))
	for n := range w.Queries {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Query returns the named query or panics — workload names are static.
func (w *Workload) Query(name string) *core.Query {
	q, ok := w.Queries[name]
	if !ok {
		panic(fmt.Sprintf("queries: unknown query %q", name))
	}
	return q
}

// AtomRelations maps a query's atom aliases to their base relations, the
// binding the local evaluators take.
func (w *Workload) AtomRelations(q *core.Query) (map[string]*rel.Relation, error) {
	m := make(map[string]*rel.Relation, len(q.Atoms))
	for _, a := range q.Atoms {
		r := w.Relations[a.Relation]
		if r == nil {
			return nil, fmt.Errorf("queries: query %s uses unknown relation %q", q.Name, a.Relation)
		}
		m[a.Alias] = r
	}
	return m, nil
}

// InputSize returns the total number of input tuples a query touches,
// counting a base relation once per atom that joins it (the "Input size"
// column of the paper's Table 6).
func (w *Workload) InputSize(q *core.Query) int {
	total := 0
	for _, a := range q.Atoms {
		if r := w.Relations[a.Relation]; r != nil {
			total += r.Cardinality()
		}
	}
	return total
}
