package queries

import (
	"context"
	"testing"

	"parajoin/internal/core"
	"parajoin/internal/dataset"
	"parajoin/internal/engine"
	"parajoin/internal/ljoin"
	"parajoin/internal/planner"
	"parajoin/internal/stats"
)

// tinyWorkload is small enough for the naive oracle.
func tinyWorkload() *Workload {
	return New(
		dataset.GraphConfig{Edges: 300, Nodes: 60, Skew: 1.3, Seed: 5},
		dataset.KBConfig{Actors: 60, Films: 40, Performances: 220, Directors: 12, Honors: 60, Awards: 4, Seed: 5},
	)
}

func TestWorkloadShape(t *testing.T) {
	w := tinyWorkload()
	names := w.Names()
	if len(names) != 8 || names[0] != "Q1" || names[7] != "Q8" {
		t.Fatalf("Names = %v", names)
	}
	// Table/figure facts from the paper: tables joined and cyclicity.
	wantAtoms := map[string]int{"Q1": 3, "Q2": 6, "Q3": 8, "Q4": 8, "Q5": 4, "Q6": 5, "Q7": 4, "Q8": 6}
	wantCyclic := map[string]bool{"Q1": true, "Q2": true, "Q3": false, "Q4": true, "Q5": true, "Q6": true, "Q7": false, "Q8": true}
	for name, q := range w.Queries {
		if len(q.Atoms) != wantAtoms[name] {
			t.Errorf("%s has %d atoms, want %d", name, len(q.Atoms), wantAtoms[name])
		}
		if core.IsAcyclic(q) == wantCyclic[name] {
			t.Errorf("%s cyclic = %v, want %v", name, !core.IsAcyclic(q), wantCyclic[name])
		}
	}
	if w.InputSize(w.Query("Q1")) != 3*w.Relations["Twitter"].Cardinality() {
		t.Error("InputSize must count a self-joined relation once per atom")
	}
}

// Every query must produce identical results through the naive oracle, a
// single-machine Tributary join, and a distributed HC_TJ plan.
func TestAllQueriesConsistentAcrossEvaluators(t *testing.T) {
	w := tinyWorkload()
	cluster := engine.NewCluster(4)
	defer cluster.Close()
	var all []*core.Query
	for _, name := range w.Names() {
		all = append(all, w.Query(name))
	}
	for _, r := range w.Relations {
		cluster.Load(r)
	}
	catalog := stats.NewCatalog()
	for _, r := range w.Relations {
		catalog.Add(r)
	}
	p := &planner.Planner{Workers: 4, Catalog: catalog, Relations: w.Relations, MaxOrders: 200, Seed: 1}

	for _, q := range all {
		aliasRels, err := w.AtomRelations(q)
		if err != nil {
			t.Fatal(err)
		}
		want, err := ljoin.NaiveEvaluate(q, aliasRels)
		if err != nil {
			t.Fatal(err)
		}
		// Single-machine Tributary join.
		tj, _, err := ljoin.Evaluate(q, aliasRels, q.Vars(), ljoin.SeekBinary)
		if err != nil {
			t.Fatalf("%s: TJ: %v", q.Name, err)
		}
		tj.Dedup()
		if !tj.Equal(want) {
			t.Errorf("%s: TJ %d tuples, naive %d", q.Name, tj.Cardinality(), want.Cardinality())
		}
		// Distributed HC_TJ.
		res, err := p.Plan(q, planner.HCTJ)
		if err != nil {
			t.Fatalf("%s: planning HC_TJ: %v", q.Name, err)
		}
		got, _, err := cluster.RunRounds(context.Background(), res.Rounds)
		if err != nil {
			t.Fatalf("%s: running HC_TJ: %v", q.Name, err)
		}
		got.Dedup()
		if !got.Equal(want) {
			t.Errorf("%s: HC_TJ %d tuples, naive %d", q.Name, got.Cardinality(), want.Cardinality())
		}
	}
}

func TestQ3HasAnswers(t *testing.T) {
	w := tinyWorkload()
	q := w.Query("Q3")
	aliasRels, _ := w.AtomRelations(q)
	got, _, err := ljoin.Evaluate(q, aliasRels, q.Vars(), ljoin.SeekBinary)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cardinality() == 0 {
		t.Fatal("Q3 must have a non-empty answer (the famous pair co-stars)")
	}
}

func TestQ7HasAnswers(t *testing.T) {
	w := tinyWorkload()
	q := w.Query("Q7")
	aliasRels, _ := w.AtomRelations(q)
	got, _, err := ljoin.Evaluate(q, aliasRels, q.Vars(), ljoin.SeekBinary)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cardinality() == 0 {
		t.Fatal("Q7 must find Academy Award winners in the 90s")
	}
}

func TestAtomRelationsUnknown(t *testing.T) {
	w := tinyWorkload()
	q := core.MustParseRule("Q(x) :- Nope(x)", nil)
	if _, err := w.AtomRelations(q); err == nil {
		t.Fatal("unknown relation should error")
	}
}
