package parajoin

import (
	"context"
	"fmt"
	"strings"

	"parajoin/internal/cache"
	"parajoin/internal/core"
	"parajoin/internal/engine"
	"parajoin/internal/shares"
)

// WithPlanCache enables the plan cache: queries whose normalized shape
// (atom structure with constants lifted to parameters) was planned before
// at the current catalog epoch skip strategy resolution, HyperCube share
// optimization, and the Tributary order search, rebuilding only the cheap
// physical plan. entries caps the cached shapes (<= 0 takes a default of
// 256). Any Load or Drop advances the catalog epoch and makes prior
// entries unreachable, so cached decisions never outlive the statistics
// they were computed from.
func WithPlanCache(entries int) Option {
	return func(db *DB) { db.planCache = cache.NewPlanCache(entries) }
}

// WithResultCache enables the result cache: a repeated (shape, arguments,
// strategy) query at an unchanged catalog epoch replays its materialized
// answer byte-identically without executing. tuples bounds the total
// resident tuples across entries, evicted LRU (<= 0 takes a default of
// 1Mi). Runs with EXPLAIN capture, under chaos fault injection, or with a
// resolved spill policy of SpillAlways bypass the cache in both
// directions.
func WithResultCache(tuples int64) Option {
	return func(db *DB) { db.resultCache = cache.NewResultCache(tuples) }
}

// resolvedSpill resolves a run's effective spill policy (RunOptions
// overrides the DB-wide policy).
func (db *DB) resolvedSpill(opts RunOptions) SpillPolicy {
	if opts.Spill != SpillDefault {
		return opts.Spill
	}
	return db.cluster.SpillPolicy
}

// resultProbe decides whether a run may use the result cache and, when it
// may, returns its key and the catalog epoch the probe is valid for. The
// bypass rules: no cache configured, EXPLAIN capture requested (the caller
// wants execution detail), a chaos fault plan wraps the transport (runs
// may fail or retry nondeterministically), or the run resolves to
// SpillAlways (a rehearsal mode whose point is exercising the spill path).
func (db *DB) resultProbe(q *core.Query, op string, opts RunOptions) (key string, epoch int64, ok bool) {
	if db.resultCache == nil || opts.Explain || db.chaos || db.resolvedSpill(opts) == SpillAlways {
		return "", 0, false
	}
	shape := cache.Normalize(q)
	return shape.ResultKey(op, string(opts.strategy())), db.cluster.DataEpoch(), true
}

// explainWithPlanOrigin prefixes an EXPLAIN ANALYZE rendering with the
// plan's origin when it was rebuilt from the plan cache.
func explainWithPlanOrigin(explain string, planCached bool) string {
	if !planCached || explain == "" {
		return explain
	}
	return "plan: cached\n" + explain
}

// explainWithShares prefixes an EXPLAIN ANALYZE rendering with the
// HyperCube share grid the run shuffled through — the dimension an elastic
// resize changes, so before/after explains make the re-derivation visible.
// Non-HyperCube plans have no grid and pass through unchanged.
func explainWithShares(explain string, hc shares.Config, workers int) string {
	if explain == "" || hc.Cells() <= 0 || len(hc.Vars) == 0 {
		return explain
	}
	return fmt.Sprintf("shares: %s over %d workers\n%s", hc, workers, explain)
}

// explainWithExecution prefixes an EXPLAIN ANALYZE rendering with where the
// operators actually ran when it was not the coordinator: fragment dispatch
// pushed them to data nodes, and the explain should say so (and name them)
// before detailing per-operator work that happened elsewhere.
func explainWithExecution(explain string, report *engine.Report) string {
	if explain == "" || report == nil || report.RemoteFragments == 0 {
		return explain
	}
	return fmt.Sprintf("execution: distributed over %d data node(s): %s\n%s",
		report.RemoteFragments, strings.Join(report.RemoteMembers, ", "), explain)
}

// Prepared is a parameterized query: a rule with "?" placeholders, parsed
// and validated once, executed many times with different arguments.
// Executions share one plan-cache entry with each other and with ad-hoc
// queries of the same shape.
type Prepared struct {
	db *DB
	q  *core.Query
}

// Prepare parses a datalog rule that may contain "?" positional parameter
// placeholders in term or filter positions:
//
//	Follows(x) :- E(?, x), E(x, ?)
//
// The rule's atoms are validated against the loaded relations now;
// arguments are supplied per execution.
func (db *DB) Prepare(rule string) (*Prepared, error) {
	q, err := core.ParseRule(rule, db.dict)
	if err != nil {
		return nil, err
	}
	if err := db.checkAtoms(q); err != nil {
		return nil, err
	}
	return &Prepared{db: db, q: q}, nil
}

// NumParams returns the number of "?" placeholders.
func (p *Prepared) NumParams() int { return p.q.NumParams() }

// String renders the rule with "?" placeholders.
func (p *Prepared) String() string { return p.q.String() }

// Bind substitutes args for the placeholders and returns the bound query,
// ready to Run/Count under any options.
func (p *Prepared) Bind(args ...int64) (*Query, error) {
	bound, err := p.q.Bind(args)
	if err != nil {
		return nil, err
	}
	return &Query{db: p.db, q: bound}, nil
}

// Execute binds args and runs the query with the Auto strategy.
func (p *Prepared) Execute(ctx context.Context, args ...int64) (*Result, error) {
	return p.ExecuteWithOptions(ctx, RunOptions{}, args...)
}

// ExecuteWithOptions binds args and runs the query with explicit options.
func (p *Prepared) ExecuteWithOptions(ctx context.Context, opts RunOptions, args ...int64) (*Result, error) {
	q, err := p.Bind(args...)
	if err != nil {
		return nil, err
	}
	return q.RunWithOptions(ctx, opts)
}

// Count binds args and returns only the answer count.
func (p *Prepared) Count(ctx context.Context, args ...int64) (int64, *Stats, error) {
	q, err := p.Bind(args...)
	if err != nil {
		return 0, nil, err
	}
	return q.CountWithOptions(ctx, RunOptions{})
}

// CacheCounters is a point-in-time snapshot of one cache's activity.
type CacheCounters struct {
	Hits      int64
	Misses    int64
	Evictions int64
	// Entries is the resident entry count; Tuples and Bytes are the result
	// cache's residency (always zero for the plan cache).
	Entries int
	Tuples  int64
	Bytes   int64
}

// CacheStats describes both caches' state for this database. The
// process-wide /metrics families (parajoin_cache_*) aggregate across all
// databases in the process; these counters are per-DB.
type CacheStats struct {
	PlanEnabled   bool
	Plan          CacheCounters
	ResultEnabled bool
	Result        CacheCounters
}

// CacheStats snapshots the database's cache activity.
func (db *DB) CacheStats() CacheStats {
	var cs CacheStats
	if db.planCache != nil {
		cs.PlanEnabled = true
		cs.Plan = CacheCounters(db.planCache.Counters())
	}
	if db.resultCache != nil {
		cs.ResultEnabled = true
		cs.Result = CacheCounters(db.resultCache.Counters())
	}
	return cs
}

// DataEpoch returns the database's catalog mutation epoch: it advances on
// every Load (any path — rows, edges, CSV, synthetic generation), so two
// equal epochs bracket an interval with no data changes. Cached plans and
// results are keyed on it.
func (db *DB) DataEpoch() int64 { return db.cluster.DataEpoch() }
