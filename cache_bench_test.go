package parajoin

import (
	"context"
	"testing"
)

// Plan-cache benchmarks: planning cost for join queries is dominated by
// the sampled variable-order search (and share optimization), which the
// plan cache skips on a shape hit. Compare:
//
//	go test -bench 'PlanOnly|FiveCycle' -benchtime 20x .

func cacheBenchDB(b *testing.B, planCache bool) *DB {
	b.Helper()
	opts := []Option{WithSeed(7)}
	if planCache {
		opts = append(opts, WithPlanCache(0))
	}
	db := Open(4, opts...)
	b.Cleanup(func() { db.Close() })
	if err := db.LoadEdges("E", SyntheticGraph(20000, 1200, 5)); err != nil {
		b.Fatal(err)
	}
	return db
}

// benchPlanOnly times planFor alone — the planning component the cache
// accelerates — for a two-hop parameterized query.
func benchPlanOnly(b *testing.B, planCache bool) {
	db := cacheBenchDB(b, planCache)
	p, err := db.Prepare("R(x,z) :- E(x,y), E(y,z), E(z,?)")
	if err != nil {
		b.Fatal(err)
	}
	q, err := p.Bind(3)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, _, err := q.planFor(Auto); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPlanOnlyCold(b *testing.B)   { benchPlanOnly(b, false) }
func BenchmarkPlanOnlyCached(b *testing.B) { benchPlanOnly(b, true) }

// benchFiveCycle runs a 5-variable cycle end to end: the order search over
// five variables makes planning the dominant cost, so the plan cache cuts
// total latency, not just planning time.
func benchFiveCycle(b *testing.B, planCache bool) {
	db := cacheBenchDB(b, planCache)
	p, err := db.Prepare("R(v,w,x,y,z) :- E(v,w), E(w,x), E(x,y), E(y,z), E(z,v), E(v,?)")
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	if _, err := p.Execute(ctx, 3); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Execute(ctx, 3); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFiveCycleCold(b *testing.B)   { benchFiveCycle(b, false) }
func BenchmarkFiveCycleCached(b *testing.B) { benchFiveCycle(b, true) }
