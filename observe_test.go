package parajoin

import (
	"context"
	"strings"
	"testing"

	"parajoin/internal/trace"
)

func TestWithTracerSeesEveryRun(t *testing.T) {
	col := trace.NewCollector()
	db := Open(4, WithSeed(7), WithTracer(NewTracer(col)))
	defer db.Close()
	if err := db.LoadEdges("E", SyntheticGraph(1500, 200, 3)); err != nil {
		t.Fatal(err)
	}
	q, err := db.Query("Tri(x,y,z) :- E(x,y), E(y,z), E(z,x)")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := q.RunWith(context.Background(), HyperCubeTributary); err != nil {
		t.Fatal(err)
	}
	events := col.Events()
	if len(events) == 0 {
		t.Fatal("tracer saw no events")
	}
	kinds := map[trace.Kind]int{}
	for _, e := range events {
		kinds[e.Kind]++
	}
	for _, k := range []trace.Kind{trace.KindRun, trace.KindOp, trace.KindSend, trace.KindPhase} {
		if kinds[k] == 0 {
			t.Errorf("no %q events in %v", k, kinds)
		}
	}
}

func TestQueryExplainAnalyze(t *testing.T) {
	db := testDB(t, 4)
	loadTriangleGraph(t, db)
	q, err := db.Query("Tri(x,y,z) :- E(x,y), E(y,z), E(z,x)")
	if err != nil {
		t.Fatal(err)
	}
	out, err := q.ExplainAnalyze(context.Background(), HyperCubeTributary)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"exchange 0 [hypercube]", "tributary join Tri", "rows=", "producer-skew=", "transport:"} {
		if !strings.Contains(out, want) {
			t.Errorf("EXPLAIN ANALYZE lacks %q:\n%s", want, out)
		}
	}
}

// TestExplainAnalyzeSemijoinRounds covers the multi-round path through the
// public API: the Yannakakis reduction runs several rounds, each of which
// must carry its own actuals.
func TestExplainAnalyzeSemijoinRounds(t *testing.T) {
	db := testDB(t, 4)
	loadTriangleGraph(t, db)
	q, err := db.Query("Path(x,z) :- E(x,y), E(y,z)")
	if err != nil {
		t.Fatal(err)
	}
	out, err := q.ExplainAnalyze(context.Background(), Semijoin)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "round 0") || !strings.Contains(out, "rows=") {
		t.Errorf("semijoin EXPLAIN ANALYZE lacks round headers or actuals:\n%s", out)
	}
}
