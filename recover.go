package parajoin

import (
	"parajoin/internal/engine"
	"parajoin/internal/fault"
)

// ErrTransport marks retryable transport-layer failures: connection loss the
// TCP transport could not heal within its redial budget, or an injected
// fault standing in for one. Because HyperCube plans shuffle in a single
// round and keep no cross-query state, a query that fails with ErrTransport
// can simply be run again — the serving layer does exactly that (see
// server.Config.RetryBudget).
var ErrTransport = engine.ErrTransport

// Retryable reports whether err is a transient transport failure that
// re-executing the query could cure. Terminal conditions — out-of-memory,
// spill-budget, closed database, context cancellation — are never
// retryable.
func Retryable(err error) bool { return engine.Retryable(err) }

// WithFaultPlan interposes a deterministic fault injector between the
// engine and its transport: every Send/CloseSend/Recv consults the plan and
// may be dropped, stalled, or failed according to its seeded rules. Injected
// errors classify as retryable transport failures (errors.Is ErrTransport),
// so they exercise exactly the recovery paths real network faults take.
// A nil plan is a no-op.
func WithFaultPlan(p *fault.Plan) Option {
	return func(db *DB) {
		if p == nil {
			return
		}
		// Chaos runs may fail, stall, or retry nondeterministically, so
		// they are barred from the result cache in both directions.
		db.chaos = true
		inj := p.NewInjector()
		db.cluster.WrapTransport(func(t engine.Transport) engine.Transport {
			return fault.Wrap(t, inj)
		})
	}
}
