package parajoin

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"testing"
)

// sortedRows canonicalizes a result for comparison.
func sortedRows(rows [][]int64) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		out[i] = fmt.Sprint(r)
	}
	sort.Strings(out)
	return out
}

func equalRows(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// runParallelMix fires many simultaneous Run/Count calls on one DB — the
// epoch-based exchange namespacing under real contention — and asserts
// every result matches its serial baseline.
func runParallelMix(t *testing.T, db *DB) {
	t.Helper()
	if err := db.LoadEdges("E", SyntheticGraph(1200, 150, 3)); err != nil {
		t.Fatal(err)
	}
	rules := []string{
		"Tri(x,y,z) :- E(x,y), E(y,z), E(z,x)",
		"Chain(x,y,z,w) :- E(x,y), E(y,z), E(z,w)",
		"Twohop(x,z) :- E(x,y), E(y,z)",
	}
	strategies := []Strategy{HyperCubeTributary, RegularHash, RegularTributary, BroadcastHash}

	// Serial baselines, one per (rule, strategy).
	type key struct {
		rule int
		strt Strategy
	}
	wantRows := map[key][]string{}
	wantCount := map[key]int64{}
	for ri, rule := range rules {
		q, err := db.Query(rule)
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range strategies {
			res, err := q.RunWith(context.Background(), s)
			if err != nil {
				t.Fatalf("serial %s/%s: %v", rule, s, err)
			}
			n, _, err := q.CountWith(context.Background(), s)
			if err != nil {
				t.Fatalf("serial count %s/%s: %v", rule, s, err)
			}
			k := key{ri, s}
			wantRows[k] = sortedRows(res.Rows)
			wantCount[k] = n
		}
	}

	const parallelism = 24
	var wg sync.WaitGroup
	errs := make([]error, parallelism)
	for g := 0; g < parallelism; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			k := key{g % len(rules), strategies[g%len(strategies)]}
			q, err := db.Query(rules[k.rule])
			if err != nil {
				errs[g] = err
				return
			}
			if g%2 == 0 {
				res, err := q.RunWith(context.Background(), k.strt)
				if err != nil {
					errs[g] = fmt.Errorf("parallel run %s/%s: %w", rules[k.rule], k.strt, err)
					return
				}
				if got := sortedRows(res.Rows); !equalRows(got, wantRows[k]) {
					errs[g] = fmt.Errorf("parallel run %s/%s: %d rows, want %d (results diverge from serial)",
						rules[k.rule], k.strt, len(got), len(wantRows[k]))
				}
			} else {
				n, _, err := q.CountWith(context.Background(), k.strt)
				if err != nil {
					errs[g] = fmt.Errorf("parallel count %s/%s: %w", rules[k.rule], k.strt, err)
					return
				}
				if n != wantCount[k] {
					errs[g] = fmt.Errorf("parallel count %s/%s: got %d, want %d",
						rules[k.rule], k.strt, n, wantCount[k])
				}
			}
		}(g)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestParallelRunsMemTransport(t *testing.T) {
	db := Open(4, WithSeed(7))
	defer db.Close()
	runParallelMix(t, db)
}

func TestParallelRunsTCPTransport(t *testing.T) {
	if testing.Short() {
		t.Skip("TCP loopback cluster in -short mode")
	}
	addrs := []string{"127.0.0.1:0", "127.0.0.1:0", "127.0.0.1:0", "127.0.0.1:0"}
	db, err := OpenTCP(addrs, []int{0, 1, 2, 3}, WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	runParallelMix(t, db)
}

// TestLoadDuringQueries races Load against Run on the public API (the
// engine-level regression test lives in internal/engine).
func TestLoadDuringQueries(t *testing.T) {
	db := Open(4, WithSeed(7))
	defer db.Close()
	if err := db.LoadEdges("E", SyntheticGraph(800, 120, 1)); err != nil {
		t.Fatal(err)
	}
	q, err := db.Query("Twohop(x,z) :- E(x,y), E(y,z)")
	if err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := int64(0); ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if err := db.LoadEdges("Other", SyntheticGraph(300, 80, i)); err != nil {
				return
			}
		}
	}()
	for i := 0; i < 10; i++ {
		if _, err := q.Run(context.Background()); err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
	}
	close(stop)
	wg.Wait()
}

// TestCloseWhileRunning checks the DB-level ErrClosed contract.
func TestCloseWhileRunning(t *testing.T) {
	db := Open(4)
	if err := db.LoadEdges("E", SyntheticGraph(500, 100, 1)); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err) // idempotent
	}
	q, err := db.Query("Twohop(x,z) :- E(x,y), E(y,z)")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := q.Run(context.Background()); !errors.Is(err, ErrClosed) {
		t.Fatalf("run after close: err = %v, want ErrClosed", err)
	}
}
