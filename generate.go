package parajoin

import (
	"parajoin/internal/dataset"
)

// SyntheticGraph generates a power-law directed graph (the stand-in for
// social-network data like the paper's Twitter subset): edges directed
// follow edges with Zipf-distributed in-degrees. Deterministic per seed.
// Useful for trying the engine without real data.
func SyntheticGraph(edges, nodes int, seed int64) [][2]int64 {
	g := dataset.Twitter(dataset.GraphConfig{Edges: edges, Nodes: nodes, Skew: 1.3, Seed: seed})
	out := make([][2]int64, len(g.Tuples))
	for i, t := range g.Tuples {
		out[i] = [2]int64{t[0], t[1]}
	}
	return out
}
