package parajoin

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestLoadCSVReader(t *testing.T) {
	db := testDB(t, 2)
	data := "id,name\n1,alice\n2,bob\n3,alice\n"
	if err := db.LoadCSVReader("Name", strings.NewReader(data)); err != nil {
		t.Fatal(err)
	}
	if db.Cardinality("Name") != 3 {
		t.Fatalf("loaded %d rows", db.Cardinality("Name"))
	}
	q, err := db.Query(`Q(id) :- Name(id, "alice")`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := q.RunWith(context.Background(), RegularHash)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("query over CSV data returned %v", res.Rows)
	}
}

func TestLoadCSVFile(t *testing.T) {
	db := testDB(t, 2)
	path := filepath.Join(t.TempDir(), "edges.csv")
	if err := os.WriteFile(path, []byte("src,dst\n1,2\n2,3\n3,1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := db.LoadCSV("E", path); err != nil {
		t.Fatal(err)
	}
	q, _ := db.Query("Tri(x,y,z) :- E(x,y), E(y,z), E(z,x)")
	res, err := q.RunWith(context.Background(), HyperCubeTributary)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("the 3-cycle has 3 rotations, got %d", len(res.Rows))
	}
}

func TestLoadCSVErrors(t *testing.T) {
	db := testDB(t, 2)
	if err := db.LoadCSV("X", "/does/not/exist.csv"); err == nil {
		t.Error("missing file should error")
	}
	if err := db.LoadCSVReader("X", strings.NewReader("")); err == nil {
		t.Error("empty input should error")
	}
	if err := db.LoadCSVReader("X", strings.NewReader("a,b\n1\n")); err == nil {
		t.Error("ragged CSV should error")
	}
}
