package parajoin_test

import (
	"context"
	"fmt"

	"parajoin"
)

// The canonical session: load edges, ask for triangles, let Auto pick the
// HyperCube + Tributary plan.
func Example() {
	db := parajoin.Open(4)
	defer db.Close()

	// A 4-cycle with one chord: exactly one directed triangle (1,2,3).
	edges := [][2]int64{{1, 2}, {2, 3}, {3, 4}, {4, 1}, {3, 1}}
	if err := db.LoadEdges("E", edges); err != nil {
		panic(err)
	}

	q, err := db.Query("Tri(x,y,z) :- E(x,y), E(y,z), E(z,x)")
	if err != nil {
		panic(err)
	}
	res, err := q.RunWith(context.Background(), parajoin.HyperCubeTributary)
	if err != nil {
		panic(err)
	}
	fmt.Println(len(res.Rows), "triangles (one per rotation)")
	// Output: 3 triangles (one per rotation)
}

// Constants select rows; strings go through the shared dictionary.
func ExampleDB_Query_constants() {
	db := parajoin.Open(2)
	defer db.Close()

	rows := [][]int64{
		{1, db.Code("gold")},
		{2, db.Code("silver")},
		{3, db.Code("gold")},
	}
	if err := db.Load("Medal", []string{"athlete", "kind"}, rows); err != nil {
		panic(err)
	}
	q, err := db.Query(`Winners(a) :- Medal(a, "gold")`)
	if err != nil {
		panic(err)
	}
	res, err := q.RunWith(context.Background(), parajoin.RegularHash)
	if err != nil {
		panic(err)
	}
	fmt.Println(len(res.Rows), "gold medalists")
	// Output: 2 gold medalists
}

// Count aggregates without materializing the result set — the mode
// graphlet-frequency analyses want.
func ExampleQuery_Count() {
	db := parajoin.Open(4)
	defer db.Close()
	if err := db.LoadEdges("E", [][2]int64{{1, 2}, {2, 1}, {2, 3}, {3, 2}}); err != nil {
		panic(err)
	}
	q, err := db.Query("TwoCycle(x,y) :- E(x,y), E(y,x)")
	if err != nil {
		panic(err)
	}
	n, _, err := q.CountWith(context.Background(), parajoin.HyperCubeTributary)
	if err != nil {
		panic(err)
	}
	fmt.Println(n, "ordered 2-cycles")
	// Output: 4 ordered 2-cycles
}
