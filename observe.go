package parajoin

import (
	"context"
	"io"
	"net/http"

	"parajoin/internal/engine"
	"parajoin/internal/metrics"
	"parajoin/internal/trace"
)

// Tracer collects structured span events (per-run, per-exchange,
// per-operator, per-phase) from query execution. Create one with NewTracer
// and attach it with WithTracer; a nil Tracer — the default — disables
// tracing at zero cost on the operator hot path.
type Tracer = trace.Tracer

// TraceEvent is one span event; see the trace package for field semantics
// and the JSONL encoding.
type TraceEvent = trace.Event

// TraceSink receives batches of trace events. Implementations must be safe
// for concurrent use.
type TraceSink = trace.Sink

// TraceRing is a fixed-size in-memory event buffer that keeps the most
// recent events — the sink behind the /debug/trace endpoint.
type TraceRing = trace.Ring

// NewTracer creates a tracer writing to sink.
func NewTracer(sink TraceSink) *Tracer { return trace.New(sink) }

// NewJSONLSink creates a sink encoding events as JSON Lines to w.
func NewJSONLSink(w io.Writer) TraceSink { return trace.NewJSONLSink(w) }

// NewTraceRing creates a ring buffer sink holding the last n events.
func NewTraceRing(n int) *TraceRing { return trace.NewRing(n) }

// MultiTraceSink fans events out to several sinks.
func MultiTraceSink(sinks ...TraceSink) TraceSink { return trace.MultiSink(sinks...) }

// WithTracer attaches a tracer to every query the database runs.
func WithTracer(t *Tracer) Option {
	return func(db *DB) { db.cluster.Tracer = t }
}

// ExplainAnalyze executes the query under an explicit strategy with tracing
// forced on and returns the physical plan annotated with actuals: rows and
// wall time per operator (slowest worker), tuples sent with producer and
// consumer skew per exchange, Tributary sort/join phase times, and the
// run's transport byte totals. The query's results are discarded; any
// tracer attached with WithTracer still receives the events.
func (q *Query) ExplainAnalyze(ctx context.Context, s Strategy) (string, error) {
	res, _, planCached, err := q.planFor(s)
	if err != nil {
		return "", err
	}
	col := trace.NewCollector()
	sink := TraceSink(col)
	if t := q.db.cluster.Tracer; t.Enabled() {
		sink = trace.MultiSink(col, t.Sink())
	}
	_, report, err := q.db.cluster.RunRoundsTraced(ctx, res.Rounds, trace.New(sink))
	if err != nil {
		return "", err
	}
	return explainWithPlanOrigin(
		explainWithShares(engine.ExplainAnalyze(res.Rounds, col.Events(), report), res.HC, q.db.workers),
		planCached), nil
}

// explainOpts resolves a run's engine options, attaching an event collector
// when RunOptions.Explain asks for an in-flight EXPLAIN ANALYZE capture. A
// tracer attached with WithTracer still receives the run's events.
func (db *DB) explainOpts(opts RunOptions) (engine.RunOpts, *trace.Collector) {
	eopts := opts.engineOpts()
	if !opts.Explain {
		return eopts, nil
	}
	col := trace.NewCollector()
	sink := trace.Sink(col)
	if t := db.cluster.Tracer; t.Enabled() {
		sink = trace.MultiSink(col, t.Sink())
	}
	eopts.Tracer = trace.New(sink)
	return eopts, col
}

// planSeconds is the planning-stage latency histogram (Auto resolution,
// share optimization, variable-order search) observed by every planFor.
var planSeconds = metrics.Default.Histogram("parajoin_query_plan_seconds",
	"Query planning latency: strategy resolution, share optimization, variable-order search.",
	metrics.DurationBuckets)

// MetricsHandler returns an http.Handler serving the process-wide metrics
// registry in the Prometheus text format — every parajoin subsystem
// (engine, transports, spill, serving layer) registers its counters and
// histograms there. internal/debug mounts it at /metrics; embedders can
// mount it on their own mux.
func MetricsHandler() http.Handler { return metrics.Handler() }

// WriteMetrics writes the process-wide metrics registry to w in the
// Prometheus text exposition format.
func WriteMetrics(w io.Writer) { metrics.Default.WritePrometheus(w) }
