// Benchmarks that regenerate every table and figure of the paper's
// evaluation (see DESIGN.md for the experiment index). Each benchmark
// reports the experiment's headline numbers as custom metrics and logs the
// full paper-style table (visible with -v). cmd/benchrunner prints the same
// tables directly.
//
// Set PARAJOIN_BENCH_FAST=1 to run on a reduced dataset.
package parajoin

import (
	"fmt"
	"os"
	"sync"
	"testing"
	"time"

	"parajoin/internal/core"
	"parajoin/internal/dataset"
	"parajoin/internal/experiments"
	"parajoin/internal/hypercube"
	"parajoin/internal/ljoin"
	"parajoin/internal/planner"
	"parajoin/internal/rel"
	"parajoin/internal/shares"
)

var (
	benchSuiteOnce sync.Once
	benchSuite     *experiments.Suite
)

// suite returns the shared experiment suite; experiments cache their runs,
// so benchmarks amortize across iterations.
func suite() *experiments.Suite {
	benchSuiteOnce.Do(func() {
		benchSuite = experiments.NewSuite()
		benchSuite.Timeout = 4 * time.Minute
		if os.Getenv("PARAJOIN_BENCH_FAST") != "" {
			benchSuite.Workers = 16
			benchSuite.Graph = dataset.GraphConfig{Edges: 6000, Nodes: 500, Skew: 1.3, Seed: 42}
			benchSuite.KB = dataset.KBConfig{Actors: 600, Films: 400, Performances: 2000,
				Directors: 80, Honors: 300, Awards: 10, Seed: 7}
		}
	})
	return benchSuite
}

// logRender captures a Render call into the benchmark log (shown with -v).
func logRender(b *testing.B, render func(w interface{ Write([]byte) (int, error) })) {
	b.Helper()
	var sb logWriter
	render(&sb)
	b.Log("\n" + string(sb))
}

type logWriter []byte

func (w *logWriter) Write(p []byte) (int, error) {
	*w = append(*w, p...)
	return len(p), nil
}

// benchSixConfigs is the shared body for the per-query figures.
func benchSixConfigs(b *testing.B, query string) {
	s := suite()
	var sc *experiments.SixConfigs
	var err error
	for i := 0; i < b.N; i++ {
		sc, err = s.SixConfigs(query)
		if err != nil {
			b.Fatal(err)
		}
	}
	if hc := sc.Row(planner.HCTJ); hc != nil && !hc.Failed {
		b.ReportMetric(float64(hc.Shuffled), "hcTuples")
		b.ReportMetric(hc.Wall.Seconds(), "hcWallSec")
	}
	if rs := sc.Row(planner.RSHJ); rs != nil && !rs.Failed {
		b.ReportMetric(float64(rs.Shuffled), "rsTuples")
		b.ReportMetric(rs.Wall.Seconds(), "rsWallSec")
	}
	logRender(b, func(w interface{ Write([]byte) (int, error) }) { sc.Render(w) })
}

// --- Tables ---------------------------------------------------------------

func BenchmarkTable1_FreebaseRelations(b *testing.B) {
	s := suite()
	var t *experiments.RelationSizes
	for i := 0; i < b.N; i++ {
		t = s.Table1()
	}
	b.ReportMetric(float64(t.Rows[1].Tuples), "actorPerform")
	logRender(b, func(w interface{ Write([]byte) (int, error) }) { t.Render(w) })
}

func BenchmarkTable2_Q1RegularShuffleSkew(b *testing.B) {
	s := suite()
	var t *experiments.LoadBalance
	var err error
	for i := 0; i < b.N; i++ {
		if t, err = s.Table2(); err != nil {
			b.Fatal(err)
		}
	}
	// The paper's headline: the intermediate-result shuffle is both the
	// biggest and the most skewed.
	worst := 0.0
	for _, r := range t.Rows {
		if r.ConsumerSkew > worst {
			worst = r.ConsumerSkew
		}
	}
	b.ReportMetric(worst, "maxConsumerSkew")
	b.ReportMetric(float64(t.Total), "tuplesShuffled")
	logRender(b, func(w interface{ Write([]byte) (int, error) }) { t.Render(w) })
}

func BenchmarkTable3_Q1HyperCubeSkew(b *testing.B) {
	s := suite()
	var t *experiments.LoadBalance
	var err error
	for i := 0; i < b.N; i++ {
		if t, err = s.Table3(); err != nil {
			b.Fatal(err)
		}
	}
	worst := 0.0
	for _, r := range t.Rows {
		if r.ConsumerSkew > worst {
			worst = r.ConsumerSkew
		}
	}
	b.ReportMetric(worst, "maxConsumerSkew")
	b.ReportMetric(float64(t.Total), "tuplesShuffled")
	logRender(b, func(w interface{ Write([]byte) (int, error) }) { t.Render(w) })
}

func BenchmarkTable4_Q1BroadcastSkew(b *testing.B) {
	s := suite()
	var t *experiments.LoadBalance
	var err error
	for i := 0; i < b.N; i++ {
		if t, err = s.Table4(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(t.Total), "tuplesShuffled")
	logRender(b, func(w interface{ Write([]byte) (int, error) }) { t.Render(w) })
}

func BenchmarkTable5_Q1OperatorTime(b *testing.B) {
	s := suite()
	var t *experiments.OperatorTime
	var err error
	for i := 0; i < b.N; i++ {
		if t, err = s.Table5(); err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range t.Rows {
		if r.Config == planner.BRTJ && r.Phase == "all sorts" {
			b.ReportMetric(r.Share, "brTJSortShare")
		}
	}
	logRender(b, func(w interface{ Write([]byte) (int, error) }) { t.Render(w) })
}

func BenchmarkTable6_Summary(b *testing.B) {
	s := suite()
	var t *experiments.Summary
	var err error
	for i := 0; i < b.N; i++ {
		if t, err = s.Table6(); err != nil {
			b.Fatal(err)
		}
	}
	hcWins := 0
	for _, r := range t.Rows {
		if r.Best == planner.HCTJ {
			hcWins++
		}
	}
	b.ReportMetric(float64(hcWins), "hcTJWins")
	logRender(b, func(w interface{ Write([]byte) (int, error) }) { t.Render(w) })
}

func BenchmarkTable7_OrderOptimization(b *testing.B) {
	s := suite()
	for i := 0; i < b.N; i++ {
		for _, q := range []string{"Q3", "Q7", "Q8"} {
			st, err := s.OrderStudy(q, 5, 20*time.Second)
			if err != nil {
				b.Fatal(err)
			}
			if st.AvgRandom > 0 {
				b.ReportMetric(float64(st.AvgRandom)/float64(st.Best.Runtime+1), q+"Speedup")
			}
		}
	}
}

func BenchmarkTable8_Q7Relations(b *testing.B) {
	s := suite()
	var t *experiments.RelationSizes
	for i := 0; i < b.N; i++ {
		t = s.Table8()
	}
	b.ReportMetric(float64(t.Rows[0].Tuples), "selectedNames")
	logRender(b, func(w interface{ Write([]byte) (int, error) }) { t.Render(w) })
}

// --- Figures ----------------------------------------------------------------

func BenchmarkFigure3_Q1SixConfigs(b *testing.B)  { benchSixConfigs(b, "Q1") }
func BenchmarkFigure4_Q2SixConfigs(b *testing.B)  { benchSixConfigs(b, "Q2") }
func BenchmarkFigure6_Q3SixConfigs(b *testing.B)  { benchSixConfigs(b, "Q3") }
func BenchmarkFigure9_Q4SixConfigs(b *testing.B)  { benchSixConfigs(b, "Q4") }
func BenchmarkFigure13_Q5SixConfigs(b *testing.B) { benchSixConfigs(b, "Q5") }
func BenchmarkFigure14_Q6SixConfigs(b *testing.B) { benchSixConfigs(b, "Q6") }
func BenchmarkFigure15_Q7SixConfigs(b *testing.B) { benchSixConfigs(b, "Q7") }
func BenchmarkFigure17_Q8SixConfigs(b *testing.B) { benchSixConfigs(b, "Q8") }

func BenchmarkFigure8_Q4WorkerUtilization(b *testing.B) {
	s := suite()
	var u *experiments.Utilization
	var err error
	for i := 0; i < b.N; i++ {
		if u, err = s.Utilization("Q4", planner.HCTJ, planner.BRTJ); err != nil {
			b.Fatal(err)
		}
	}
	for _, p := range u.Profiles {
		b.ReportMetric(p.Skew, p.Config.String()+"BusySkew")
	}
	logRender(b, func(w interface{ Write([]byte) (int, error) }) { u.Render(w) })
}

func BenchmarkFigure10_Scalability(b *testing.B) {
	s := suite()
	sizes := []int{2, 4, 8, 16, 32, 64}
	if s.Workers < 64 {
		sizes = []int{2, 4, 8, 16}
	}
	var sc *experiments.Scalability
	var err error
	for i := 0; i < b.N; i++ {
		if sc, err = s.Scalability("Q1", sizes...); err != nil {
			b.Fatal(err)
		}
	}
	last := sc.Rows[len(sc.Rows)-1]
	b.ReportMetric(last.SpeedupHC, "hcLoadSpeedup")
	b.ReportMetric(float64(last.HCShuffled), "hcTuplesAtMax")
	logRender(b, func(w interface{ Write([]byte) (int, error) }) { sc.Render(w) })
}

// BenchmarkFigure10b_IntraWorkerSpeedup sweeps the sub-join parallelism K
// on Q1 and Q2 under HC_TJ. The wallSpeedupK4 metric is the headline on a
// multi-core host; subJoinTasks confirms the split engaged even where the
// host has no spare cores to convert it into wall-clock gains.
func BenchmarkFigure10b_IntraWorkerSpeedup(b *testing.B) {
	s := suite()
	var st *experiments.SpeedupStudy
	var err error
	for i := 0; i < b.N; i++ {
		if st, err = s.Speedup(s.Workers, []int{1, 2, 4, 8}); err != nil {
			b.Fatal(err)
		}
	}
	var tasks int64
	for _, r := range st.Rows {
		if r.Query == "Q1" && r.K == 4 {
			b.ReportMetric(r.Speedup, "wallSpeedupK4")
		}
		tasks += r.JoinTasks
	}
	b.ReportMetric(float64(tasks), "subJoinTasks")
	logRender(b, func(w interface{ Write([]byte) (int, error) }) { st.Render(w) })
}

func BenchmarkFigure11_ShareOptimizers(b *testing.B) {
	s := suite()
	var f *experiments.ShareOptimizers
	var err error
	for i := 0; i < b.N; i++ {
		if f, err = s.Figure11([]string{"Q1", "Q2", "Q3", "Q4"}, []int{64, 63, 65}); err != nil {
			b.Fatal(err)
		}
	}
	worstOurs, worstRD := 0.0, 0.0
	for _, r := range f.Rows {
		if r.OurAlg > worstOurs {
			worstOurs = r.OurAlg
		}
		if r.RoundDn > worstRD {
			worstRD = r.RoundDn
		}
	}
	b.ReportMetric(worstOurs, "ourWorstRatio")
	b.ReportMetric(worstRD, "roundDownWorstRatio")
	logRender(b, func(w interface{ Write([]byte) (int, error) }) { f.Render(w) })
}

func BenchmarkFigure12_CostModelScatter(b *testing.B) {
	s := suite()
	for i := 0; i < b.N; i++ {
		for _, q := range []string{"Q3", "Q7", "Q8"} {
			st, err := s.OrderStudy(q, 10, 20*time.Second)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(st.Correlation, q+"Corr")
		}
	}
}

func BenchmarkSemijoin_Q3Q7(b *testing.B) {
	s := suite()
	var st *experiments.SemijoinStudy
	var err error
	for i := 0; i < b.N; i++ {
		if st, err = s.SemijoinStudy("Q3", "Q7"); err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range st.Rows {
		b.ReportMetric(float64(r.SemiShuffled), r.Query+"SemiTuples")
	}
	logRender(b, func(w interface{ Write([]byte) (int, error) }) { st.Render(w) })
}

// BenchmarkSkewStudy_HeavyHitterShuffle compares the plain regular shuffle
// against the heavy-hitter-aware variant (footnote 2 of the paper).
func BenchmarkSkewStudy_HeavyHitterShuffle(b *testing.B) {
	s := suite()
	var st *experiments.SkewStudy
	var err error
	for i := 0; i < b.N; i++ {
		if st, err = s.SkewStudy("Q1"); err != nil {
			b.Fatal(err)
		}
	}
	r := st.Rows[0]
	b.ReportMetric(r.PlainSkew, "plainSkew")
	b.ReportMetric(r.SkewAwareSkew, "awareSkew")
	logRender(b, func(w interface{ Write([]byte) (int, error) }) { st.Render(w) })
}

// --- Ablations (design choices called out in DESIGN.md) --------------------

// BenchmarkAblation_TJSortedArraysVsHashTree compares the local multiway
// Tributary join against a tree of local hash joins on identical data — the
// paper's argument for sorting over on-the-fly index structures.
func BenchmarkAblation_TJSortedArraysVsHashTree(b *testing.B) {
	w := suite().Workload()
	q := w.Query("Q1")
	rels, err := w.AtomRelations(q)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("tributary", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			out, _, err := ljoin.Evaluate(q, rels, q.Vars(), ljoin.SeekBinary)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(out.Cardinality()), "triangles")
		}
	})
	b.Run("hashTree", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			e := rels[q.Atoms[0].Alias]
			rs := ljoin.HashJoin(e, rels[q.Atoms[1].Alias], []int{1}, []int{0}) // (x,y)⋈(y,z)
			out := ljoin.HashJoin(rs, rels[q.Atoms[2].Alias], []int{2, 0}, []int{0, 1})
			b.ReportMetric(float64(out.Cardinality()), "triangles")
			b.ReportMetric(float64(rs.Cardinality()), "intermediate")
		}
	})
}

// BenchmarkAblation_SortedArraysVsBTree is the paper's §2.2 design
// argument: backing the Leapfrog Triejoin API with sorted arrays (sort the
// shuffled data, binary-search seeks) versus building a B-tree on the fly
// (the LogicBlox backend). Sorting should win on freshly shuffled data.
func BenchmarkAblation_SortedArraysVsBTree(b *testing.B) {
	w := suite().Workload()
	q := w.Query("Q1")
	rels, err := w.AtomRelations(q)
	if err != nil {
		b.Fatal(err)
	}
	for _, mode := range []struct {
		name string
		m    ljoin.SeekMode
	}{{"sortedArrays", ljoin.SeekBinary}, {"btree", ljoin.SeekBTree}} {
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				out, st, err := ljoin.Evaluate(q, rels, q.Vars(), mode.m)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(out.Cardinality()), "triangles")
				b.ReportMetric(st.SortTime.Seconds(), "buildSec")
			}
		})
	}
}

// BenchmarkAblation_GallopingSeek compares binary against galloping seeks
// inside the Tributary join.
func BenchmarkAblation_GallopingSeek(b *testing.B) {
	w := suite().Workload()
	q := w.Query("Q1")
	rels, err := w.AtomRelations(q)
	if err != nil {
		b.Fatal(err)
	}
	for _, mode := range []struct {
		name string
		m    ljoin.SeekMode
	}{{"binary", ljoin.SeekBinary}, {"galloping", ljoin.SeekGalloping}} {
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, st, err := ljoin.Evaluate(q, rels, q.Vars(), mode.m)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(st.Seeks), "seeks")
			}
		})
	}
}

// BenchmarkAblation_BatchSize sweeps the exchange batch granularity.
func BenchmarkAblation_BatchSize(b *testing.B) {
	w := suite().Workload()
	for _, batch := range []int{64, 1024, 8192} {
		b.Run(fmt.Sprintf("batch%d", batch), func(b *testing.B) {
			db := Open(8, WithBatchSize(batch))
			defer db.Close()
			tw := w.Relations["Twitter"]
			edges := make([][2]int64, len(tw.Tuples))
			for i, t := range tw.Tuples {
				edges[i] = [2]int64{t[0], t[1]}
			}
			if err := db.LoadEdges("E", edges); err != nil {
				b.Fatal(err)
			}
			pq, err := db.Query("T(x,y,z) :- E(x,y), E(y,z), E(z,x)")
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := pq.RunWith(b.Context(), HyperCubeTributary); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblation_EvenDimTieBreak quantifies Algorithm 1's even-dimension
// tie-break: on a relation skewed in one attribute, 2×2 shares bound the
// worst worker far better than 1×4.
func BenchmarkAblation_EvenDimTieBreak(b *testing.B) {
	// A(x,y) with a hot y value: the 1×4 configuration hashes only y, so
	// the hot key pins a quarter of the data to one worker; 2×2 also
	// hashes x and splits the hot key across workers.
	a := rel.New("A", "x", "y")
	for i := int64(0); i < 20000; i++ {
		y := i % 1000
		if i%4 == 0 {
			y = 7 // hot key
		}
		a.AppendRow(i, y)
	}
	bRel := a.Rename("B", "x", "y")
	q := core.MustParseRule("Q(x,y) :- A(x,y), B(x,y)", nil)
	relations := map[string]*rel.Relation{"A": a, "B": bRel}
	for _, dims := range [][]int{{2, 2}, {1, 4}} {
		b.Run(fmt.Sprintf("%dx%d", dims[0], dims[1]), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := shares.Config{Vars: q.JoinVars(), Dims: dims}
				alloc := shares.OneCellPerWorker(cfg, cfg.Cells())
				loads, err := hypercube.SimulateLoads(q, relations, alloc)
				if err != nil {
					b.Fatal(err)
				}
				var max, total int64
				for _, l := range loads {
					total += l
					if l > max {
						max = l
					}
				}
				b.ReportMetric(float64(max)/(float64(total)/float64(len(loads))), "skew")
			}
		})
	}
}
