package parajoin

import (
	"context"
	"testing"
)

func TestCountMatchesRun(t *testing.T) {
	db := testDB(t, 4)
	loadTriangleGraph(t, db)

	q, err := db.Query("Tri(x,y,z) :- E(x,y), E(y,z), E(z,x)")
	if err != nil {
		t.Fatal(err)
	}
	res, err := q.RunWith(context.Background(), HyperCubeTributary)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range Strategies() {
		n, st, err := q.CountWith(context.Background(), s)
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		if n != int64(len(res.Rows)) {
			t.Errorf("%s: Count = %d, Run found %d", s, n, len(res.Rows))
		}
		if st.Wall <= 0 {
			t.Errorf("%s: stats missing", s)
		}
	}
}

func TestCountProjectionDedupsGlobally(t *testing.T) {
	db := testDB(t, 4)
	loadTriangleGraph(t, db)

	// Projection: distinct vertices that are in some triangle. Per-worker
	// counting without the global dedup pass would overcount.
	q, err := db.Query("OnTri(x) :- E(x,y), E(y,z), E(z,x)")
	if err != nil {
		t.Fatal(err)
	}
	res, err := q.RunWith(context.Background(), HyperCubeTributary)
	if err != nil {
		t.Fatal(err)
	}
	n, _, err := q.CountWith(context.Background(), HyperCubeTributary)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(len(res.Rows)) {
		t.Fatalf("Count = %d, distinct rows = %d", n, len(res.Rows))
	}
}

func TestCountAuto(t *testing.T) {
	db := testDB(t, 4)
	loadTriangleGraph(t, db)
	q, _ := db.Query("Tri(x,y,z) :- E(x,y), E(y,z), E(z,x)")
	n, st, err := q.Count(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if n <= 0 {
		t.Fatal("expected triangles")
	}
	if st.Strategy != HyperCubeTributary {
		t.Errorf("auto count picked %s", st.Strategy)
	}
}
