package parajoin

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"parajoin/internal/spill"
	"parajoin/internal/trace"
)

const triangleRule = "Tri(x,y,z) :- E(x,y), E(y,z), E(z,x)"

// TestSpillAcceptance is the end-to-end acceptance check through the public
// API: a triangle join squeezed to a quarter of its measured working set
// completes under SpillOnPressure with the unlimited answer, reports spill
// activity in Stats, emits spill trace events, advances the process-wide
// counters behind the parajoin_spill expvar, and leaves no temp files.
func TestSpillAcceptance(t *testing.T) {
	dir := t.TempDir()
	ring := NewTraceRing(1 << 14)
	db := Open(4, WithSeed(7), WithSpillDir(dir), WithTracer(NewTracer(ring)))
	defer db.Close()
	if err := db.LoadEdges("E", SyntheticGraph(3000, 250, 3)); err != nil {
		t.Fatal(err)
	}
	q, err := db.Query(triangleRule)
	if err != nil {
		t.Fatal(err)
	}

	// Baseline: unlimited, spill off — and a working-set measurement.
	base, err := q.RunWithOptions(context.Background(), RunOptions{Strategy: HyperCubeTributary})
	if err != nil {
		t.Fatal(err)
	}
	peak := base.Stats.PeakResidentTuples
	if peak < 8 {
		t.Fatalf("baseline peak %d too small to squeeze 4×", peak)
	}

	before := spill.ReadStats()
	res, err := q.RunWithOptions(context.Background(), RunOptions{
		Strategy:       HyperCubeTributary,
		MaxLocalTuples: peak / 4,
		Spill:          SpillOnPressure,
	})
	if err != nil {
		t.Fatalf("squeezed run (budget %d): %v", peak/4, err)
	}
	if !equalRows(sortedRows(res.Rows), sortedRows(base.Rows)) {
		t.Fatalf("spilled run returned %d rows, unlimited %d", len(res.Rows), len(base.Rows))
	}
	st := res.Stats
	if st.SpillSegments == 0 || st.SpilledBytes == 0 {
		t.Fatalf("no spill activity in stats: %+v", st)
	}
	if st.PeakResidentTuples > peak/4 {
		t.Errorf("squeezed peak %d exceeds budget %d", st.PeakResidentTuples, peak/4)
	}
	after := spill.ReadStats()
	if after.Segments <= before.Segments || after.BytesWritten <= before.BytesWritten {
		t.Errorf("process-wide spill counters did not advance: %+v -> %+v", before, after)
	}
	spills := 0
	for _, e := range ring.Snapshot() {
		if e.Kind == trace.KindSpill {
			spills++
		}
	}
	if spills == 0 {
		t.Error("no spill trace events emitted")
	}
	if leftovers, _ := filepath.Glob(filepath.Join(dir, "parajoin-spill-*")); len(leftovers) != 0 {
		t.Fatalf("spill temp dirs left behind: %v", leftovers)
	}
}

// TestSpillColbatchJoinByteIdentical is the property test for the columnar
// segment format: a run whose every exchange buffer is forced through
// spill-to-disk (and therefore through colbatch-encoded segments and the
// external merge) must return rows byte-identical — same values, same
// order — to the all-in-memory run, for the triangle and 4-clique queries
// at serial and K=4 intra-worker parallelism alike.
func TestSpillColbatchJoinByteIdentical(t *testing.T) {
	inputs := []struct {
		name  string
		edges [][2]int64
		rule  string
	}{
		{"triangle", SyntheticGraph(1500, 200, 3),
			"Tri(x,y,z) :- E(x,y), E(y,z), E(z,x)"},
		{"4clique", SyntheticGraph(900, 90, 5),
			"Cl(x,y,z,w) :- E(x,y), E(x,z), E(x,w), E(y,z), E(y,w), E(z,w)"},
	}
	for _, in := range inputs {
		t.Run(in.name, func(t *testing.T) {
			db := Open(4, WithSeed(7), WithSpillDir(t.TempDir()))
			defer db.Close()
			if err := db.LoadEdges("E", in.edges); err != nil {
				t.Fatal(err)
			}
			q, err := db.Query(in.rule)
			if err != nil {
				t.Fatal(err)
			}
			for _, k := range []int{1, 4} {
				mem, err := q.RunWithOptions(context.Background(),
					RunOptions{Strategy: HyperCubeTributary, Parallelism: k})
				if err != nil {
					t.Fatalf("K=%d in-memory: %v", k, err)
				}
				if mem.Stats.SpillSegments != 0 {
					t.Fatalf("K=%d reference run spilled %d segments", k, mem.Stats.SpillSegments)
				}
				budget := mem.Stats.PeakResidentTuples / 4
				if budget < 2 {
					budget = 2
				}
				spilled, err := q.RunWithOptions(context.Background(), RunOptions{
					Strategy:       HyperCubeTributary,
					Parallelism:    k,
					MaxLocalTuples: budget,
					Spill:          SpillOnPressure,
				})
				if err != nil {
					t.Fatalf("K=%d spilled (budget %d): %v", k, budget, err)
				}
				if spilled.Stats.SpillSegments == 0 || spilled.Stats.SpilledBytes == 0 {
					t.Fatalf("K=%d: squeezed run produced no segments (%+v)", k, spilled.Stats)
				}
				identicalResults(t, fmt.Sprintf("%s K=%d spilled", in.name, k), spilled, mem)
			}
		})
	}
}

// TestSpillOffStillFailsHard: the legacy contract — budget exceeded with
// spilling off is ErrOutOfMemory, not silent degradation.
func TestSpillOffStillFailsHard(t *testing.T) {
	db := testDB(t, 2)
	loadTriangleGraph(t, db)
	q, err := db.Query(triangleRule)
	if err != nil {
		t.Fatal(err)
	}
	_, err = q.RunWithOptions(context.Background(), RunOptions{
		Strategy:       HyperCubeTributary,
		MaxLocalTuples: 10,
	})
	if !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("err = %v, want ErrOutOfMemory", err)
	}
}

// TestSpillLowMemoryTriangleSuite runs the triangle query under every
// strategy at a fraction (PARAJOIN_LOW_MEM_DIV, default 8) of each
// strategy's measured working set with spilling on. Strategies whose state
// can spill must return the unlimited answer; the rest must fail with the
// typed out-of-memory error, never a wrong answer. CI's low-memory job
// runs this under the race detector.
func TestSpillLowMemoryTriangleSuite(t *testing.T) {
	div := int64(8)
	if v := os.Getenv("PARAJOIN_LOW_MEM_DIV"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil || n <= 0 {
			t.Fatalf("PARAJOIN_LOW_MEM_DIV=%q: want a positive integer", v)
		}
		div = n
	}

	dir := t.TempDir()
	db := Open(3, WithSeed(7), WithSpillDir(dir))
	defer db.Close()
	if err := db.LoadEdges("E", SyntheticGraph(2000, 200, 3)); err != nil {
		t.Fatal(err)
	}
	q, err := db.Query(triangleRule)
	if err != nil {
		t.Fatal(err)
	}

	for _, s := range Strategies() {
		base, err := q.RunWithOptions(context.Background(), RunOptions{Strategy: s})
		if err != nil {
			t.Fatalf("%s unlimited: %v", s, err)
		}
		budget := base.Stats.PeakResidentTuples / div
		if budget < 2 {
			budget = 2
		}
		res, err := q.RunWithOptions(context.Background(), RunOptions{
			Strategy:       s,
			MaxLocalTuples: budget,
			Spill:          SpillOnPressure,
		})
		switch {
		case err == nil:
			if !equalRows(sortedRows(res.Rows), sortedRows(base.Rows)) {
				t.Errorf("%s at 1/%d budget: %d rows, unlimited %d",
					s, div, len(res.Rows), len(base.Rows))
			}
		case errors.Is(err, ErrOutOfMemory):
			// Non-spillable state (hash tables, dedup sets) at a budget this
			// tight fails cleanly; that is the contract.
			t.Logf("%s at 1/%d budget: %v", s, div, err)
		default:
			t.Errorf("%s at 1/%d budget: unexpected error %v", s, div, err)
		}
		if leftovers, _ := filepath.Glob(filepath.Join(dir, "parajoin-spill-*")); len(leftovers) != 0 {
			t.Fatalf("%s left spill dirs behind: %v", s, leftovers)
		}
	}
}
