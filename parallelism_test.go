package parajoin

import (
	"context"
	"fmt"
	"testing"

	"parajoin/internal/dataset"
)

// The determinism suite for intra-worker parallel joins: whatever K is,
// the rows and their order must be byte-identical to the serial run. This
// is load-bearing beyond aesthetics — the fault-tolerance layer re-executes
// failed queries and assumes re-execution reproduces identical results.

// identicalResults fails unless both results hold the same rows in the
// same order.
func identicalResults(t *testing.T, label string, got, want *Result) {
	t.Helper()
	if len(got.Rows) != len(want.Rows) {
		t.Fatalf("%s: %d rows, serial has %d", label, len(got.Rows), len(want.Rows))
	}
	for i := range want.Rows {
		if len(got.Rows[i]) != len(want.Rows[i]) {
			t.Fatalf("%s: row %d arity mismatch", label, i)
		}
		for j := range want.Rows[i] {
			if got.Rows[i][j] != want.Rows[i][j] {
				t.Fatalf("%s: row %d differs: got %v want %v", label, i, got.Rows[i], want.Rows[i])
			}
		}
	}
}

func TestParallelJoinDeterminism(t *testing.T) {
	// A skewed generator alongside the uniform ones: Zipf-heavy hubs give
	// the partitioner very uneven sub-range costs, the case most likely to
	// expose ordering bugs in the shard pool.
	skewed := dataset.Twitter(dataset.GraphConfig{Edges: 1500, Nodes: 120, Skew: 2.2, Seed: 17})
	skewedEdges := make([][2]int64, len(skewed.Tuples))
	for i, tp := range skewed.Tuples {
		skewedEdges[i] = [2]int64{tp[0], tp[1]}
	}

	inputs := []struct {
		name  string
		edges [][2]int64
		rule  string
	}{
		{"triangle", SyntheticGraph(1500, 200, 3),
			"Tri(x,y,z) :- E(x,y), E(y,z), E(z,x)"},
		{"4clique", SyntheticGraph(900, 90, 5),
			"Cl(x,y,z,w) :- E(x,y), E(x,z), E(x,w), E(y,z), E(y,w), E(z,w)"},
		{"skewed-triangle", skewedEdges,
			"Tri(x,y,z) :- E(x,y), E(y,z), E(z,x)"},
	}
	for _, in := range inputs {
		t.Run(in.name, func(t *testing.T) {
			db := testDB(t, 4)
			if err := db.LoadEdges("E", in.edges); err != nil {
				t.Fatal(err)
			}
			q, err := db.Query(in.rule)
			if err != nil {
				t.Fatal(err)
			}
			serial, err := q.RunWithOptions(context.Background(),
				RunOptions{Strategy: HyperCubeTributary, Parallelism: -1})
			if err != nil {
				t.Fatal(err)
			}
			if serial.Stats.JoinTasks != 0 {
				t.Fatalf("serial run reported %d sub-join tasks", serial.Stats.JoinTasks)
			}
			engaged := false
			for _, k := range []int{2, 3, 8} {
				par, err := q.RunWithOptions(context.Background(),
					RunOptions{Strategy: HyperCubeTributary, Parallelism: k})
				if err != nil {
					t.Fatalf("K=%d: %v", k, err)
				}
				identicalResults(t, fmt.Sprintf("K=%d", k), par, serial)
				if par.Stats.JoinTasks > 0 {
					engaged = true
				}
			}
			if !engaged {
				t.Error("parallelism never engaged at any K")
			}
		})
	}
}

// TestParallelJoinDeterminismWithSpill repeats the triangle case with the
// spill path forced on: per-shard buffers must chain back in range order.
func TestParallelJoinDeterminismWithSpill(t *testing.T) {
	open := func() (*DB, *Query) {
		db := Open(4, WithSeed(7), WithSpill(SpillAlways), WithSpillDir(t.TempDir()))
		t.Cleanup(func() { db.Close() })
		if err := db.LoadEdges("E", SyntheticGraph(1500, 200, 3)); err != nil {
			t.Fatal(err)
		}
		q, err := db.Query("Tri(x,y,z) :- E(x,y), E(y,z), E(z,x)")
		if err != nil {
			t.Fatal(err)
		}
		return db, q
	}
	_, q := open()
	serial, err := q.RunWithOptions(context.Background(),
		RunOptions{Strategy: HyperCubeTributary, Parallelism: -1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := q.RunWithOptions(context.Background(),
		RunOptions{Strategy: HyperCubeTributary, Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	identicalResults(t, "K=4 spilled", par, serial)
	if par.Stats.JoinTasks == 0 {
		t.Error("parallelism never engaged under SpillAlways")
	}
}

func TestWithParallelismOption(t *testing.T) {
	db := Open(2, WithSeed(7), WithParallelism(3))
	defer db.Close()
	if got := db.Parallelism(); got != 3 {
		t.Fatalf("Parallelism() = %d, want 3", got)
	}
	if err := db.LoadEdges("E", SyntheticGraph(800, 100, 3)); err != nil {
		t.Fatal(err)
	}
	q, err := db.Query("Tri(x,y,z) :- E(x,y), E(y,z), E(z,x)")
	if err != nil {
		t.Fatal(err)
	}
	res, err := q.RunWith(context.Background(), HyperCubeTributary)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.JoinTasks == 0 {
		t.Error("WithParallelism(3) never engaged")
	}
	if res.Stats.JoinStealMax == 0 || res.Stats.JoinStealMax > res.Stats.JoinTasks {
		t.Errorf("JoinStealMax=%d out of range (JoinTasks=%d)",
			res.Stats.JoinStealMax, res.Stats.JoinTasks)
	}
}
