// Package parajoin is an embeddable shared-nothing parallel query engine
// for multiway join queries, reproducing "From Theory to Practice:
// Efficient Join Query Evaluation in a Parallel Database System" (Chu,
// Balazinska, Suciu — SIGMOD 2015).
//
// Queries are conjunctive queries (joins, selections, comparison filters)
// written in datalog notation. The engine evaluates them across N workers
// with a choice of shuffle × join strategies:
//
//   - HyperCubeTributary (the paper's headline): a single-round HyperCube
//     shuffle (shares picked by the paper's Algorithm 1) feeding a
//     worst-case-optimal Tributary join (Leapfrog Triejoin over sorted
//     arrays, variable order picked by the paper's Section-5 cost model).
//   - RegularHash / RegularTributary: single-attribute hash shuffles with a
//     left-deep tree of binary joins (pipelined symmetric hash joins, or
//     binary sort-merge Tributary joins).
//   - BroadcastHash / BroadcastTributary: keep the largest relation in
//     place, broadcast the rest, evaluate locally.
//   - Semijoin: the distributed Yannakakis reduction (acyclic queries).
//   - Auto: pick between HyperCube and regular plans with the paper's
//     Table-6 rule of thumb (large intermediates and skew → HyperCube).
//
// A minimal session:
//
//	db := parajoin.Open(8)
//	defer db.Close()
//	db.LoadEdges("Follows", edges)
//	q, _ := db.Query("Triangles(x,y,z) :- Follows(x,y), Follows(y,z), Follows(z,x)")
//	res, _ := q.Run(context.Background())
//	fmt.Println(len(res.Rows), "triangles;", res.Stats.TuplesShuffled, "tuples shuffled")
package parajoin

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"parajoin/internal/cache"
	"parajoin/internal/core"
	"parajoin/internal/engine"
	"parajoin/internal/ljoin"
	"parajoin/internal/planner"
	"parajoin/internal/rel"
	"parajoin/internal/shares"
	"parajoin/internal/stats"
)

// Strategy selects how a query is shuffled and joined.
type Strategy string

// The available execution strategies.
const (
	// Auto picks a strategy from the statistics (see package comment).
	Auto Strategy = "auto"
	// HyperCubeTributary is the paper's HC_TJ configuration.
	HyperCubeTributary Strategy = "hc_tj"
	// HyperCubeHash is HC_HJ.
	HyperCubeHash Strategy = "hc_hj"
	// RegularHash is RS_HJ.
	RegularHash Strategy = "rs_hj"
	// RegularTributary is RS_TJ.
	RegularTributary Strategy = "rs_tj"
	// BroadcastHash is BR_HJ.
	BroadcastHash Strategy = "br_hj"
	// BroadcastTributary is BR_TJ.
	BroadcastTributary Strategy = "br_tj"
	// Semijoin is the distributed Yannakakis reduction; acyclic queries only.
	Semijoin Strategy = "semijoin"
	// RegularHashSkew is RS_HJ with heavy-hitter-aware shuffles: heavy join
	// keys are split round-robin on one side and broadcast on the other
	// (the skew-join technique the paper's footnote 2 mentions).
	RegularHashSkew Strategy = "rs_hj_skew"
)

func (s Strategy) planConfig() (planner.PlanConfig, error) {
	switch s {
	case HyperCubeTributary:
		return planner.HCTJ, nil
	case HyperCubeHash:
		return planner.HCHJ, nil
	case RegularHash:
		return planner.RSHJ, nil
	case RegularTributary:
		return planner.RSTJ, nil
	case BroadcastHash:
		return planner.BRHJ, nil
	case BroadcastTributary:
		return planner.BRTJ, nil
	case Semijoin:
		return planner.SemiJoin, nil
	case RegularHashSkew:
		return planner.RSHJSkew, nil
	}
	return 0, fmt.Errorf("parajoin: unknown strategy %q", s)
}

// Strategies lists every explicit strategy (excluding Auto).
func Strategies() []Strategy {
	return []Strategy{RegularHash, RegularTributary, RegularHashSkew, BroadcastHash, BroadcastTributary, HyperCubeHash, HyperCubeTributary}
}

// ErrClosed is returned by queries run after (or interrupted by) Close.
var ErrClosed = engine.ErrClosed

// ErrOutOfMemory is returned when a query exceeds its per-worker
// materialization budget (WithMemoryLimit or RunOptions.MaxLocalTuples)
// and spilling is off (or the remaining state cannot spill).
var ErrOutOfMemory = engine.ErrOutOfMemory

// ErrSpillBudget is returned when a query's spilled bytes exceed the hard
// disk cap (WithSpillBudget).
var ErrSpillBudget = engine.ErrSpillBudget

// SpillPolicy decides whether a query over its memory budget degrades to
// disk or fails.
type SpillPolicy = engine.SpillPolicy

// The spill policies.
const (
	// SpillDefault inherits the enclosing scope's policy (RunOptions →
	// DB → SpillOff).
	SpillDefault = engine.SpillDefault
	// SpillOff fails budget-exceeding queries with ErrOutOfMemory — the
	// default.
	SpillOff = engine.SpillOff
	// SpillOnPressure seals spillable operator state to disk when the
	// budget is hit, letting the query complete with bounded memory.
	SpillOnPressure = engine.SpillOnPressure
	// SpillAlways spills eagerly regardless of pressure (testing / worst-
	// case rehearsal).
	SpillAlways = engine.SpillAlways
)

// ParseSpillPolicy parses "off", "on-pressure", "always", or ""
// (default).
func ParseSpillPolicy(s string) (SpillPolicy, error) { return engine.ParseSpillPolicy(s) }

// DB is an in-process shared-nothing parallel database: N workers, each
// owning a horizontal fragment of every loaded relation.
//
// A DB is safe for concurrent use: Load and Query.Run/Count calls may
// overlap from any number of goroutines. Each run plans against a snapshot
// of the catalog, runs in a private exchange namespace, and keeps
// multi-round intermediates in run-private storage.
type DB struct {
	mu       sync.Mutex
	cluster  *engine.Cluster
	dict     *rel.Dict
	rels     map[string]*rel.Relation
	workers  int
	maxOrder int
	seed     int64
	// planCache and resultCache are nil unless enabled with WithPlanCache /
	// WithResultCache; chaos records that a fault plan wraps the transport,
	// which disqualifies runs from the result cache (see cache.go).
	planCache   *cache.PlanCache
	resultCache *cache.ResultCache
	chaos       bool
}

// Option configures Open.
type Option func(*DB)

// WithMemoryLimit caps the tuples a single worker may materialize during a
// query; exceeding it fails the query with an out-of-memory error (the
// behaviour the paper reports as FAIL).
func WithMemoryLimit(tuples int64) Option {
	return func(db *DB) { db.cluster.MaxLocalTuples = tuples }
}

// WithBatchSize sets the exchange/operator batch granularity.
func WithBatchSize(n int) Option {
	return func(db *DB) { db.cluster.BatchSize = n }
}

// WithSpill sets the database-wide spill policy. With SpillOnPressure a
// query that crosses its memory budget degrades to disk instead of
// failing: spillable operator state (Tributary sort runs, exchange
// materializations, result buffers) is sealed to compact segment files
// and merged back streamingly.
func WithSpill(p SpillPolicy) Option {
	return func(db *DB) { db.cluster.SpillPolicy = p }
}

// WithSpillDir sets the base directory for per-query spill directories
// ("" uses the system temp directory).
func WithSpillDir(dir string) Option {
	return func(db *DB) { db.cluster.SpillDir = dir }
}

// WithSpillBudget caps the bytes a single query may spill to disk; 0
// means unlimited. The tuple budget is soft (it degrades to disk); this
// cap is hard — exceeding it fails the query with ErrSpillBudget.
func WithSpillBudget(bytes int64) Option {
	return func(db *DB) { db.cluster.MaxSpillBytes = bytes }
}

// WithParallelism sets how many sub-joins each worker may run concurrently
// inside one Tributary join. 0 (the default) resolves automatically from
// GOMAXPROCS and the worker count; 1 forces the serial path; K>1 splits
// the first join attribute's domain into contiguous ranges joined by up to
// K goroutines. Output is bit-identical to the serial path whatever K is:
// the ranges are disjoint and concatenated in domain order.
func WithParallelism(k int) Option {
	return func(db *DB) { db.cluster.Parallelism = k }
}

// WithSeed seeds the variable-order sampling for reproducible plans.
func WithSeed(seed int64) Option {
	return func(db *DB) { db.seed = seed }
}

// WithColumnarExchange toggles the dictionary-encoded columnar batch
// encoding (internal/colbatch) on the exchange transport. TCP clusters use
// it by default — pass false to restore the legacy row-form gob frames for
// byte-level A/B comparison. In-memory clusters pass batches by reference
// by default; passing true routes them through the same encode/decode path
// the TCP transport uses, so byte counters report encoded wire bytes —
// that is how the benchmark suite measures exchange volume. Query results
// are identical either way.
func WithColumnarExchange(on bool) Option {
	return func(db *DB) {
		switch tr := db.cluster.Transport().(type) {
		case *engine.MemTransport:
			tr.Columnar = on
		case *engine.TCPTransport:
			tr.SetLegacyTuples(!on)
		}
	}
}

// Open creates a database with the given number of workers over the
// in-memory transport.
func Open(workers int, opts ...Option) *DB {
	return newDB(engine.NewCluster(workers), workers, opts)
}

// OpenTCP creates a database whose workers exchange tuples over TCP.
// addrs[i] is worker i's listen address; hosted lists the workers this
// process runs — all of them for a single-process loopback cluster, a
// subset for a multi-process deployment (each worker hosted by exactly one
// process). In the multi-process case every process must load the same
// relations and execute the same sequence of queries with the same options
// (the SPMD contract extended across processes); each process's results
// cover its hosted workers.
func OpenTCP(addrs []string, hosted []int, opts ...Option) (*DB, error) {
	tr, err := engine.NewTCPTransport(addrs, hosted)
	if err != nil {
		return nil, err
	}
	cluster := engine.NewPartialCluster(len(addrs), hosted, tr)
	return newDB(cluster, len(addrs), opts), nil
}

func newDB(cluster *engine.Cluster, workers int, opts []Option) *DB {
	db := &DB{
		cluster:  cluster,
		dict:     rel.NewDict(),
		rels:     map[string]*rel.Relation{},
		workers:  workers,
		maxOrder: 5040,
		seed:     1,
	}
	for _, o := range opts {
		o(db)
	}
	return db
}

// Close releases the database's transport. It is idempotent and safe while
// queries run: in-flight runs fail with ErrClosed, as does any later Run.
func (db *DB) Close() error { return db.cluster.Close() }

// Workers returns the cluster size.
func (db *DB) Workers() int { return db.workers }

// SetRemoteRunner installs (or, given nil, removes) a remote execution hook
// on the database's engine: when set, whole multi-round plans are forwarded
// to it instead of executing on the coordinator's local workers. Planning,
// caching, and result handling are unchanged — only where the operators run
// moves. The serving layer installs a cluster fragment dispatcher here after
// every elastic rebuild; see DESIGN.md, "Distributed execution".
func (db *DB) SetRemoteRunner(r engine.RemoteRunner) { db.cluster.Remote = r }

// Load registers a relation and round-robin-partitions its rows across the
// workers. Values are int64; use Code to encode strings.
func (db *DB) Load(name string, columns []string, rows [][]int64) error {
	if name == "" || len(columns) == 0 {
		return fmt.Errorf("parajoin: relation needs a name and at least one column")
	}
	r := rel.New(name, columns...)
	for i, row := range rows {
		if len(row) != len(columns) {
			return fmt.Errorf("parajoin: row %d of %s has %d values for %d columns", i, name, len(row), len(columns))
		}
		r.Append(rel.Tuple(row).Clone())
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	db.rels[name] = r
	db.cluster.Load(r)
	return nil
}

// LoadEdges loads a binary relation of (src, dst) pairs — the common case
// for graph workloads.
func (db *DB) LoadEdges(name string, edges [][2]int64) error {
	rows := make([][]int64, len(edges))
	for i, e := range edges {
		rows[i] = []int64{e[0], e[1]}
	}
	return db.Load(name, []string{"src", "dst"}, rows)
}

// Relations lists the loaded relation names.
func (db *DB) Relations() []string {
	db.mu.Lock()
	defer db.mu.Unlock()
	names := make([]string, 0, len(db.rels))
	for n := range db.rels {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Columns returns the column names of a loaded relation (nil when unknown).
func (db *DB) Columns(name string) []string {
	db.mu.Lock()
	defer db.mu.Unlock()
	if r := db.rels[name]; r != nil {
		return append([]string(nil), r.Schema...)
	}
	return nil
}

// Cardinality returns the number of rows in a loaded relation (0 when
// unknown).
func (db *DB) Cardinality(name string) int {
	db.mu.Lock()
	defer db.mu.Unlock()
	if r := db.rels[name]; r != nil {
		return r.Cardinality()
	}
	return 0
}

// MemoryLimit returns the cluster-wide per-worker materialization cap set
// by WithMemoryLimit (0 means unlimited). The serving layer uses it to
// carve per-query budgets.
func (db *DB) MemoryLimit() int64 { return db.cluster.MaxLocalTuples }

// Spill returns the database-wide spill policy set by WithSpill.
func (db *DB) Spill() SpillPolicy { return db.cluster.SpillPolicy }

// Parallelism returns the intra-worker join parallelism set by
// WithParallelism (0 means automatic).
func (db *DB) Parallelism() int { return db.cluster.Parallelism }

// Code returns the int64 code of a string value, assigning one if new.
// String constants in query rules are encoded with the same dictionary, so
// values loaded through Code match constants written in rules.
func (db *DB) Code(s string) int64 { return db.dict.Code(s) }

// Name decodes a code produced by Code.
func (db *DB) Name(code int64) string { return db.dict.Name(code) }

// Query parses a datalog rule against the loaded relations:
//
//	Triangles(x,y,z) :- E(x,y), E(y,z), E(z,x)
//	Winners(a) :- Name(aw, "The Academy Awards"), Honor(h, aw), Actor(h, a)
//
// Quoted string constants are encoded with the database dictionary.
func (db *DB) Query(rule string) (*Query, error) {
	q, err := core.ParseRule(rule, db.dict)
	if err != nil {
		return nil, err
	}
	if n := q.NumParams(); n > 0 {
		return nil, fmt.Errorf("parajoin: rule has %d unbound parameter(s); use Prepare for parameterized rules", n)
	}
	if err := db.checkAtoms(q); err != nil {
		return nil, err
	}
	return &Query{db: db, q: q}, nil
}

// checkAtoms validates a parsed rule's atoms against the loaded catalog.
func (db *DB) checkAtoms(q *core.Query) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	for _, a := range q.Atoms {
		r := db.rels[a.Relation]
		if r == nil {
			return fmt.Errorf("parajoin: query %s uses unknown relation %q", q.Name, a.Relation)
		}
		if len(a.Terms) != r.Arity() {
			return fmt.Errorf("parajoin: atom %s has %d terms but relation %s has %d columns",
				a, len(a.Terms), a.Relation, r.Arity())
		}
	}
	return nil
}

// Query is a parsed, bound query ready to run.
type Query struct {
	db *DB
	q  *core.Query
}

// String renders the query back in datalog notation.
func (q *Query) String() string { return q.q.String() }

// IsCyclic reports whether the query hypergraph is cyclic — the class of
// queries the HyperCube+Tributary combination is built for.
func (q *Query) IsCyclic() bool { return !core.IsAcyclic(q.q) }

// Run evaluates the query with the Auto strategy.
func (q *Query) Run(ctx context.Context) (*Result, error) {
	return q.RunWith(ctx, Auto)
}

// planFor resolves Auto and plans the query under the chosen strategy.
// The returned bool reports a plan-cache hit: the physical plan was
// rebuilt from cached optimizer decisions, skipping strategy resolution,
// share optimization, and order search.
func (q *Query) planFor(s Strategy) (*planner.Result, Strategy, bool, error) {
	planStart := time.Now()
	defer func() { planSeconds.ObserveDuration(time.Since(planStart)) }()
	db := q.db
	db.mu.Lock()
	// The epoch is read with the catalog snapshot under db.mu (every
	// mutation holds db.mu while bumping it through cluster.Load), so a
	// cached entry keyed on it always matches these statistics.
	epoch := db.cluster.DataEpoch()
	catalog := stats.NewCatalog()
	relCopy := make(map[string]*rel.Relation, len(db.rels))
	for name, r := range db.rels {
		catalog.Add(r)
		relCopy[name] = r
	}
	p := &planner.Planner{
		Workers:   db.workers,
		Catalog:   catalog,
		Relations: relCopy,
		MaxOrders: db.maxOrder,
		Seed:      db.seed,
		Mode:      ljoin.SeekBinary,
	}
	db.mu.Unlock()

	var shape cache.Shape
	var planKey string
	if db.planCache != nil {
		shape = cache.Normalize(q.q)
		planKey = shape.PlanKey(string(s))
		if e := db.planCache.Get(planKey, epoch); e != nil {
			if hints := e.Hints(shape.Vars); hints != nil {
				rs := Strategy(e.Strategy)
				if cfg, err := rs.planConfig(); err == nil {
					p.Hints = hints
					if res, err := p.Plan(q.q, cfg); err == nil {
						return res, rs, true, nil
					}
					// A hint the planner rejected (stale shape, impossible
					// grid) degrades to a fresh plan, never an error.
					p.Hints = nil
				}
			}
		}
	}

	if s == Auto {
		s = chooseStrategy(q.q, catalog, db.workers)
	}
	cfg, err := s.planConfig()
	if err != nil {
		return nil, s, false, err
	}
	res, err := p.Plan(q.q, cfg)
	if err != nil {
		return nil, s, false, err
	}
	if db.planCache != nil {
		db.planCache.Put(planKey, epoch, cache.NewPlanEntry(string(s), res, shape.VarIndex()))
	}
	return res, s, false, nil
}

// RunOptions tunes one execution of a query.
type RunOptions struct {
	// Strategy selects the shuffle × join configuration; "" means Auto.
	Strategy Strategy
	// MaxLocalTuples overrides the database's per-worker materialization
	// budget for this query: 0 inherits the DB-wide limit, a negative value
	// lifts the cap. The serving layer uses it to carve per-query budgets
	// out of the cluster-wide budget.
	MaxLocalTuples int64
	// Spill overrides the database's spill policy for this query;
	// SpillDefault inherits.
	Spill SpillPolicy
	// MaxSpillBytes overrides the database's per-query spilled-bytes cap:
	// 0 inherits, a negative value lifts the cap.
	MaxSpillBytes int64
	// Parallelism overrides the database's intra-worker join parallelism
	// for this query: 0 inherits, a negative value forces the serial path,
	// K>0 allows up to K concurrent sub-joins per worker.
	Parallelism int
	// Explain captures the run's EXPLAIN ANALYZE rendering into
	// Stats.Explain: tracing is forced on for the run and the annotated
	// physical plan is built from the events of the actual execution — the
	// query is not re-run. The serving layer uses it to explain slow
	// queries after the fact.
	Explain bool
}

func (o RunOptions) strategy() Strategy {
	if o.Strategy == "" {
		return Auto
	}
	return o.Strategy
}

func (o RunOptions) engineOpts() engine.RunOpts {
	return engine.RunOpts{
		MaxLocalTuples: o.MaxLocalTuples,
		Spill:          o.Spill,
		MaxSpillBytes:  o.MaxSpillBytes,
		Parallelism:    o.Parallelism,
	}
}

// RunWith evaluates the query with an explicit strategy.
func (q *Query) RunWith(ctx context.Context, s Strategy) (*Result, error) {
	return q.RunWithOptions(ctx, RunOptions{Strategy: s})
}

// RunWithOptions evaluates the query with explicit per-run options.
func (q *Query) RunWithOptions(ctx context.Context, opts RunOptions) (*Result, error) {
	db := q.db
	start := time.Now()
	rkey, epoch, useRC := db.resultProbe(q.q, "run", opts)
	if useRC {
		if r := db.resultCache.Get(rkey, epoch); r != nil {
			return &Result{
				Columns: r.Columns,
				Rows:    r.Rows,
				Stats: Stats{
					Strategy:     Strategy(r.Strategy),
					Workers:      db.workers,
					Wall:         time.Since(start),
					ResultCached: true,
				},
			}, nil
		}
	}
	res, s, planCached, err := q.planFor(opts.strategy())
	if err != nil {
		return nil, err
	}
	eopts, col := db.explainOpts(opts)

	out, report, err := db.cluster.RunRoundsOpts(ctx, res.Rounds, eopts)
	if err != nil {
		return nil, err
	}
	if !q.q.IsFull() {
		out.Dedup()
	}

	result := &Result{
		Columns: []string(out.Schema),
		Rows:    make([][]int64, len(out.Tuples)),
		Stats: Stats{
			Strategy:        s,
			Wall:            time.Since(start),
			CPU:             report.TotalCPU(),
			TuplesShuffled:  report.TotalTuplesShuffled(),
			MaxConsumerSkew: report.MaxConsumerSkew(),
			Workers:         db.workers,
			PlanCached:      planCached,
		},
	}
	result.Stats.fromReport(report)
	if col != nil {
		result.Stats.Explain = explainWithExecution(explainWithPlanOrigin(
			explainWithShares(engine.ExplainAnalyze(res.Rounds, col.Events(), report), res.HC, db.workers),
			planCached), report)
	}
	if s == HyperCubeTributary || s == HyperCubeHash {
		result.Stats.HyperCubeShares = res.HC.String()
	}
	if len(res.Order) > 0 {
		vars := make([]string, len(res.Order))
		for i, v := range res.Order {
			vars[i] = string(v)
		}
		result.Stats.VariableOrder = vars
	}
	for i, t := range out.Tuples {
		result.Rows[i] = []int64(t)
	}
	if useRC && db.cluster.DataEpoch() == epoch {
		db.resultCache.Put(rkey, epoch, &cache.Result{
			Strategy: string(s), Columns: result.Columns, Rows: result.Rows,
		})
	}
	return result, nil
}

// Count evaluates the query and returns only the number of answers,
// without materializing them at any single site: each worker counts its
// result fragment (with a distributed dedup pass for projection queries)
// and the counts are summed. This is the mode graphlet-frequency workloads
// want (the paper's §1 motivation).
func (q *Query) Count(ctx context.Context) (int64, *Stats, error) {
	return q.CountWith(ctx, Auto)
}

// CountWith is Count under an explicit strategy.
func (q *Query) CountWith(ctx context.Context, s Strategy) (int64, *Stats, error) {
	return q.CountWithOptions(ctx, RunOptions{Strategy: s})
}

// CountWithOptions is Count with explicit per-run options.
func (q *Query) CountWithOptions(ctx context.Context, opts RunOptions) (int64, *Stats, error) {
	db := q.db
	start := time.Now()
	rkey, epoch, useRC := db.resultProbe(q.q, "count", opts)
	if useRC {
		if r := db.resultCache.Get(rkey, epoch); r != nil {
			return r.Count, &Stats{
				Strategy:     Strategy(r.Strategy),
				Workers:      db.workers,
				Wall:         time.Since(start),
				ResultCached: true,
			}, nil
		}
	}
	res, s, planCached, err := q.planFor(opts.strategy())
	if err != nil {
		return 0, nil, err
	}
	head := q.q.HeadVars()
	headCols := make([]string, len(head))
	for i, h := range head {
		headCols[i] = string(h)
	}
	if err := planner.WrapCount(res, q.q.IsFull(), headCols); err != nil {
		return 0, nil, err
	}
	eopts, col := db.explainOpts(opts)

	out, report, err := db.cluster.RunRoundsOpts(ctx, res.Rounds, eopts)
	if err != nil {
		return 0, nil, err
	}
	var total int64
	for _, t := range out.Tuples {
		total += t[0]
	}
	st := &Stats{
		Strategy:        s,
		Workers:         db.workers,
		Wall:            time.Since(start),
		CPU:             report.TotalCPU(),
		TuplesShuffled:  report.TotalTuplesShuffled(),
		MaxConsumerSkew: report.MaxConsumerSkew(),
		PlanCached:      planCached,
	}
	st.fromReport(report)
	if col != nil {
		st.Explain = explainWithExecution(explainWithPlanOrigin(
			explainWithShares(engine.ExplainAnalyze(res.Rounds, col.Events(), report), res.HC, db.workers),
			planCached), report)
	}
	if useRC && db.cluster.DataEpoch() == epoch {
		db.resultCache.Put(rkey, epoch, &cache.Result{Strategy: string(s), Count: total})
	}
	return total, st, nil
}

// Result is a materialized query answer plus execution statistics.
type Result struct {
	Columns []string
	Rows    [][]int64
	Stats   Stats
}

// Stats describes one execution: the metrics the paper's evaluation is
// built on.
type Stats struct {
	Strategy        Strategy
	Workers         int
	Wall            time.Duration
	CPU             time.Duration
	TuplesShuffled  int64
	MaxConsumerSkew float64
	// BytesShuffled is the run's transport bytes sent — encoded colbatch
	// frames on metered transports, 8 bytes per value on the in-memory
	// one. In distributed execution it aggregates the members' exchange
	// traffic from their merged reports.
	BytesShuffled int64
	// HyperCubeShares describes the share configuration ("[x:4 × y:4 × z:4]")
	// for HyperCube strategies.
	HyperCubeShares string
	// VariableOrder is the Tributary join's global attribute order.
	VariableOrder []string
	// PeakResidentTuples is the largest per-worker in-memory working set
	// the query held at once (reservation high-water mark).
	PeakResidentTuples int64
	// SpilledBytes and SpillSegments describe the query's spill-to-disk
	// activity; both zero when nothing spilled.
	SpilledBytes  int64
	SpillSegments int64
	// JoinTasks counts the sub-range joins run by intra-worker parallel
	// Tributary joins (0 when every join ran serially); JoinStealMax is
	// the most sub-ranges any single pool goroutine claimed — a load-
	// balance measure (close to JoinTasks/K means balanced).
	JoinTasks    int64
	JoinStealMax int64
	// Explain is the run's EXPLAIN ANALYZE rendering, captured from the
	// actual execution when RunOptions.Explain was set (empty otherwise).
	Explain string
	// PlanCached reports that the physical plan was rebuilt from cached
	// optimizer decisions (share optimization and order search skipped);
	// ResultCached reports that the answer itself was replayed from the
	// result cache without executing at all.
	PlanCached   bool
	ResultCached bool
	// RemoteFragments is the number of operator fragments the query ran on
	// remote data nodes (0 when the coordinator executed it locally);
	// RemoteMembers names the data nodes that ran them, in worker order.
	RemoteFragments int
	RemoteMembers   []string
}

// fromReport copies the report's spill and parallel-join counters into a
// Stats value.
func (s *Stats) fromReport(report *engine.Report) {
	for _, p := range report.PeakResidentTuples {
		if p > s.PeakResidentTuples {
			s.PeakResidentTuples = p
		}
	}
	s.BytesShuffled = report.BytesSent
	s.SpilledBytes = report.SpilledBytes
	s.SpillSegments = report.SpillSegments
	s.JoinTasks = report.JoinTasks
	s.JoinStealMax = report.JoinStealMax
	s.RemoteFragments = report.RemoteFragments
	s.RemoteMembers = report.RemoteMembers
}

// chooseStrategy applies the paper's Table-6 conclusion: when the regular
// plan's intermediate results dwarf its inputs (typical for cyclic
// queries), the HyperCube shuffle with a Tributary join wins; when the
// intermediates stay small (selective acyclic queries), the regular hash
// plan wins. We compare the estimated regular-shuffle traffic against the
// HyperCube plan's replication volume.
func chooseStrategy(q *core.Query, catalog *stats.Catalog, workers int) Strategy {
	cfg, err := shares.Optimize(q, catalog, workers)
	if err != nil {
		return RegularHash
	}
	hcVolume, err := shares.TuplesShuffled(q, catalog, cfg)
	if err != nil {
		return RegularHash
	}
	rsVolume := estimateRegularTraffic(q, catalog)
	// Require a clear margin: when traffic is comparable the paper finds
	// the regular plan faster (small intermediates, short pipelines).
	if rsVolume > 1.5*hcVolume {
		return HyperCubeTributary
	}
	return RegularHash
}

// estimateRegularTraffic estimates the tuples a left-deep regular-shuffle
// plan moves: every input once plus every intermediate result, using the
// textbook equijoin estimate.
func estimateRegularTraffic(q *core.Query, catalog *stats.Catalog) float64 {
	type est struct {
		card     float64
		distinct map[core.Var]float64
	}
	atoms := make([]est, len(q.Atoms))
	total := 0.0
	for i, a := range q.Atoms {
		st := catalog.Get(a.Relation)
		if st == nil {
			return 0
		}
		e := est{card: float64(st.Cardinality), distinct: map[core.Var]float64{}}
		for j, term := range a.Terms {
			if !term.IsVar {
				if d := float64(st.ColumnDistinct[j]); d > 0 {
					e.card /= d
				}
			}
		}
		for _, v := range a.Vars() {
			e.distinct[v] = float64(st.ColumnDistinct[a.VarPositions(v)[0]])
		}
		atoms[i] = e
		total += e.card
	}
	cur := atoms[0]
	for _, next := range atoms[1:] {
		card := cur.card * next.card
		merged := map[core.Var]float64{}
		for v, d := range cur.distinct {
			merged[v] = d
		}
		for v, d := range next.distinct {
			if prev, ok := merged[v]; ok {
				// Shared variable: apply the join selectivity.
				m := prev
				if d > m {
					m = d
				}
				if m > 1 {
					card /= m
				}
				if d < prev {
					merged[v] = d
				}
			} else {
				merged[v] = d
			}
		}
		cur = est{card: card, distinct: merged}
		total += card // the intermediate is reshuffled
	}
	return total
}
